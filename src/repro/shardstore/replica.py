"""Read replicas over sharded stores, with convergence you can check.

A :class:`ReplicaSet` keeps one **primary** :class:`~repro.shardstore
.sharded.ShardedGraphStore` plus ``replicas`` read-only copies, all
built from the same catalog.  Writes go through :meth:`commit`: the
batch is applied to the primary and then, **independently**, to every
live replica.  Application is deterministic, so each replica's shard
chains re-derive the same chained digests — and that is the whole
consistency story: :meth:`verify` compares chained history digests, and
equal digests prove the replica walked the *same version-by-version
history* as the primary, not merely that it arrived at similar bytes.

A replica that diverges (bit rot, a write that bypassed the set, a lost
commit) is detected by exactly that check, **evicted** from the routing
ring, and **re-seeded** from a primary snapshot — adopting the primary's
chain digests via :meth:`~repro.graphstore.store.GraphStore.seed`, so
convergence is provable again from the next commit on.  This is the
codebase's first fault-handling path.

Reads are served by :meth:`serve_reads`: each query routes through the
consistent-hash ring (:class:`~repro.shardstore.router.ShardRouter`) to
the replica owning its ``session_key``, and each replica drains its own
queue on its own simulated clock with its own resident
:class:`~repro.serve.pool.SessionPool` — so read throughput scales with
replica count, which `BENCH_shard.json` gates.  Because replicas hold
bit-identical graphs, *where* a query lands changes its latency, never
its answer; the failover scenario (kill a replica mid-burst, re-route,
re-seed, rejoin) is digest-checked against an undisturbed run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dynamic.delta import UpdateBatch
from repro.graph.csr import CSRGraph
from repro.serve.engine import ServeConfig, _digest
from repro.serve.pool import SessionPool
from repro.serve.request import arrival_order
from repro.shardstore.router import DEFAULT_VNODES, ShardRouter
from repro.shardstore.sharded import ShardedGraphStore, ShardedUpdate
from repro.utils.errors import ConfigError

__all__ = ["ReadRecord", "ReplicaReadOutcome", "ReplicaSet"]


@dataclass
class ReadRecord:
    """One query served by one replica."""

    qid: int
    tenant: int
    graph: str
    kernel: str
    replica: str          # which replica the router placed it on
    arrival: float        # simulated
    start: float
    finish: float
    service_s: float
    wall_s: float
    warm_cache: bool
    built_session: bool
    version: int          # logical graph version the query observed
    digest: str           # same digest scheme as the serving engine

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class ReplicaReadOutcome:
    """Everything one routed read burst produced."""

    records: list[ReadRecord]
    makespan_s: float          # latest finish across replica clocks
    throughput_qps: float
    wall_clock_s: float
    replica_counts: dict = field(default_factory=dict)  # rid -> queries
    pool_stats: dict = field(default_factory=dict)      # rid -> counters
    killed: str | None = None
    rejoined: bool = False

    def digests(self) -> dict[int, str]:
        """qid -> answer digest; placement-independent by construction."""
        return {r.qid: r.digest for r in self.records}


class ReplicaSet:
    """One primary plus N read replicas of a sharded catalog."""

    def __init__(self, catalog: dict[str, CSRGraph], *, replicas: int = 2,
                 nshards: int = 2, nranks: int | None = None,
                 vnodes: int = DEFAULT_VNODES):
        if replicas < 1:
            raise ConfigError(f"need >= 1 replica, got {replicas}")

        def build() -> ShardedGraphStore:
            return ShardedGraphStore(catalog, nshards=nshards, nranks=nranks)

        self.primary = build()
        self._stores = {f"r{i}": build() for i in range(replicas)}
        self.router = ShardRouter(dict(self._stores), vnodes=vnodes)
        self.reseeds = 0

    # -- membership ----------------------------------------------------------
    def replica_ids(self) -> list[str]:
        """Every replica, live or evicted."""
        return sorted(self._stores)

    def live_ids(self) -> list[str]:
        return self.router.store_ids()

    def replica(self, rid: str) -> ShardedGraphStore:
        try:
            return self._stores[rid]
        except KeyError:
            raise ConfigError(
                f"unknown replica {rid!r} "
                f"({', '.join(self.replica_ids())})") from None

    # -- the write path ------------------------------------------------------
    def commit(self, name: str, batch: UpdateBatch, *,
               strict: bool = False) -> ShardedUpdate:
        """Apply one batch to the primary and every *live* replica.

        Each store applies independently — nothing is copied — so equal
        post-commit digests are evidence of equal computation, which is
        what :meth:`verify` leans on.  An evicted replica misses the
        commit by design: it must re-seed before rejoining.
        """
        update = self.primary.apply(name, batch, strict=strict)
        for rid in self.live_ids():
            self._stores[rid].apply(name, batch, strict=strict)
        return update

    def commit_edges(self, name: str, inserts=None, deletes=None,
                     ) -> ShardedUpdate:
        """Convenience: build the batch from raw edge arrays and commit."""
        head = self.primary.graph(name)
        return self.commit(name, UpdateBatch.build(
            inserts, deletes, n=head.n, directed=head.directed))

    # -- convergence proof ---------------------------------------------------
    def verify(self, name: str | None = None) -> list[str]:
        """Chained-digest comparison of every live replica vs the primary.

        Returns problem strings (empty = converged).  Checks the logical
        version, the version vector and the folded chain digest — the
        digest alone would do (it covers the history), the rest makes
        failures diagnosable.
        """
        names = [name] if name is not None else self.primary.names()
        problems = []
        for n in names:
            want_v = self.primary.version(n).version
            want_vec = self.primary.version_vector(n)
            want_d = self.primary.digest(n)
            for rid in self.live_ids():
                store = self._stores[rid]
                if n not in store:
                    problems.append(f"{rid}: graph {n!r} missing")
                    continue
                if store.version(n).version != want_v:
                    problems.append(
                        f"{rid}: {n} at v{store.version(n).version}, "
                        f"primary at v{want_v}")
                if store.version_vector(n) != want_vec:
                    problems.append(
                        f"{rid}: {n} version vector "
                        f"{store.version_vector(n)} != {want_vec}")
                if store.digest(n) != want_d:
                    problems.append(
                        f"{rid}: {n} history digest diverged from primary")
        return problems

    def divergent(self) -> list[str]:
        """Live replicas whose history digests disagree with the primary."""
        out = []
        for rid in self.live_ids():
            store = self._stores[rid]
            if any(n not in store
                   or store.digest(n) != self.primary.digest(n)
                   for n in self.primary.names()):
                out.append(rid)
        return out

    # -- fault handling ------------------------------------------------------
    def evict(self, rid: str) -> None:
        """Take ``rid`` out of rotation; its keys re-route immediately."""
        self.replica(rid)
        if rid not in self.router:
            raise ConfigError(f"replica {rid!r} is already evicted")
        self.router.remove_store(rid)

    def rejoin(self, rid: str) -> None:
        """Re-seed ``rid`` from primary snapshots and put it back in."""
        store = self.replica(rid)
        if rid in self.router:
            raise ConfigError(f"replica {rid!r} is already live")
        for name in self.primary.names():
            store.seed(name, self.primary.snapshot(name))
        self.reseeds += 1
        self.router.add_store(rid, store)

    def heal(self) -> list[str]:
        """Evict + re-seed + rejoin every divergent replica; return them."""
        bad = self.divergent()
        for rid in bad:
            self.evict(rid)
            self.rejoin(rid)
        return bad

    # -- the read path -------------------------------------------------------
    def serve_reads(self, requests: list, config: ServeConfig | None = None,
                    *, kill_replica: str | None = None,
                    kill_at: int | None = None,
                    rejoin_at: int | None = None) -> ReplicaReadOutcome:
        """Drain a query-only burst through the router, FIFO per replica.

        Each live replica owns a resident pool and a simulated clock;
        a query starts at ``max(replica clock, arrival)`` on whichever
        replica the ring places its session key.  ``kill_replica`` /
        ``kill_at`` model the failover scenario: just before serving qid
        ``kill_at``, the named replica dies — its resident sessions are
        closed (warm state genuinely gone) and it leaves the ring, so
        its keys re-route to survivors.  At qid ``rejoin_at`` it
        re-seeds from the primary and rejoins.  Answer digests are
        placement-independent (replicas are digest-converged), so a
        killed run must match an undisturbed one bit-for-bit — the
        failover gate.
        """
        if not requests:
            raise ConfigError("cannot serve an empty read burst")
        if any(req.is_update for req in requests):
            raise ConfigError(
                "serve_reads takes queries only; route writes through "
                "ReplicaSet.commit")
        if (kill_replica is None) != (kill_at is None):
            raise ConfigError(
                "kill_replica and kill_at come as a pair")
        if rejoin_at is not None and kill_at is None:
            raise ConfigError("rejoin_at needs a kill to recover from")
        config = config or ServeConfig()
        pools: dict[str, SessionPool] = {}
        clocks: dict[str, float] = {}
        counts: dict[str, int] = {}
        for rid in self.live_ids():
            pools[rid] = SessionPool(
                self._stores[rid], config.session_config,
                capacity=config.pool_capacity, policy=config.pool_policy)
            clocks[rid] = 0.0
            counts[rid] = 0
        records: list[ReadRecord] = []
        killed = None
        rejoined = False
        t_run = time.perf_counter()
        try:
            for req in sorted(requests, key=arrival_order):
                if kill_at is not None and req.qid == kill_at:
                    if kill_replica not in pools:
                        raise ConfigError(
                            f"cannot kill {kill_replica!r}: not live")
                    pools.pop(kill_replica).close()
                    self.evict(kill_replica)
                    killed = kill_replica
                if (rejoin_at is not None and req.qid == rejoin_at
                        and killed is not None and not rejoined):
                    self.rejoin(killed)
                    pools[killed] = SessionPool(
                        self._stores[killed], config.session_config,
                        capacity=config.pool_capacity,
                        policy=config.pool_policy)
                    clocks.setdefault(killed, 0.0)
                    counts.setdefault(killed, 0)
                    rejoined = True
                rid = self.router.route(req.session_key)
                pool = pools[rid]
                t0 = time.perf_counter()
                session, built = pool.acquire(req.session_key)
                result = session.run(req.kernel, keep_cache=True)
                wall = time.perf_counter() - t0
                service = float(result.time)
                start = max(clocks[rid], req.arrival)
                finish = start + service
                clocks[rid] = finish
                counts[rid] = counts.get(rid, 0) + 1
                version = self._stores[rid].version(req.graph).version
                records.append(ReadRecord(
                    qid=req.qid, tenant=req.tenant, graph=req.graph,
                    kernel=req.kernel, replica=rid, arrival=req.arrival,
                    start=start, finish=finish, service_s=service,
                    wall_s=wall, warm_cache=result.warm_cache,
                    built_session=built, version=version,
                    digest=_digest(result, version)))
            pool_stats = {rid: pool.stats.as_dict()
                          for rid, pool in pools.items()}
        finally:
            for pool in pools.values():
                pool.close()
        wall_clock = time.perf_counter() - t_run
        records.sort(key=lambda r: r.qid)
        makespan = max(r.finish for r in records)
        return ReplicaReadOutcome(
            records=records, makespan_s=float(makespan),
            throughput_qps=float(len(records) / makespan),
            wall_clock_s=wall_clock, replica_counts=counts,
            pool_stats=pool_stats, killed=killed, rejoined=rejoined)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ReplicaSet({len(self.live_ids())}/"
                f"{len(self._stores)} live, reseeds={self.reseeds})")
