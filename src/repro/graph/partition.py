"""Vertex partitioning schemes.

The paper uses a **1D block partition**: vertex ``i`` goes to rank
``i // (n/p)`` (Section III-A, with the V_k formula).  It notes the load
-imbalance weakness under skewed degrees and cites **cyclic distribution**
(Lumsdaine et al.) as the balanced alternative — implemented here too and
compared by an ablation benchmark.

A partition answers three questions:

* ``owner(v)`` — which rank stores vertex ``v``;
* ``to_local(v)`` — the vertex's index within its owner's arrays;
* ``local_vertices(rank)`` — the global ids a rank owns.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE, gather_ranges
from repro.utils.errors import PartitionError


class Partition(abc.ABC):
    """Abstract vertex-to-rank mapping."""

    def __init__(self, n: int, nranks: int):
        if nranks < 1:
            raise PartitionError(f"need >= 1 rank, got {nranks}")
        if n < 0:
            raise PartitionError(f"negative vertex count {n}")
        self.n = int(n)
        self.nranks = int(nranks)

    @abc.abstractmethod
    def owner(self, v: int) -> int:
        """Rank owning vertex ``v``."""

    @abc.abstractmethod
    def owners(self, vs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""

    @abc.abstractmethod
    def to_local(self, v: int) -> int:
        """Index of ``v`` inside its owner's local arrays."""

    @abc.abstractmethod
    def to_local_many(self, vs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_local`."""

    @abc.abstractmethod
    def local_vertices(self, rank: int) -> np.ndarray:
        """Global ids owned by ``rank`` in local-index order."""

    def local_count(self, rank: int) -> int:
        return self.local_vertices(rank).shape[0]

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise PartitionError(f"vertex {v} out of range [0, {self.n})")

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise PartitionError(f"rank {rank} out of range [0, {self.nranks})")


class BlockPartition1D(Partition):
    """Contiguous ranges: the paper's V_k scheme, generalized to any n.

    The first ``n % p`` ranks receive one extra vertex so that the scheme
    works when ``p`` does not divide ``n`` (the paper assumes it does).
    """

    def __init__(self, n: int, nranks: int):
        super().__init__(n, nranks)
        base, extra = divmod(self.n, self.nranks)
        counts = np.full(self.nranks, base, dtype=np.int64)
        counts[:extra] += 1
        self._starts = np.zeros(self.nranks + 1, dtype=np.int64)
        np.cumsum(counts, out=self._starts[1:])

    def range_of(self, rank: int) -> tuple[int, int]:
        """Half-open global-id range owned by ``rank``."""
        self._check_rank(rank)
        return int(self._starts[rank]), int(self._starts[rank + 1])

    def owner(self, v: int) -> int:
        self._check_vertex(v)
        return int(np.searchsorted(self._starts, v, side="right") - 1)

    def owners(self, vs: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._starts, np.asarray(vs), side="right") - 1

    def to_local(self, v: int) -> int:
        return v - int(self._starts[self.owner(v)])

    def to_local_many(self, vs: np.ndarray) -> np.ndarray:
        vs = np.asarray(vs)
        return vs - self._starts[self.owners(vs)]

    def local_vertices(self, rank: int) -> np.ndarray:
        lo, hi = self.range_of(rank)
        return np.arange(lo, hi, dtype=np.int64)


class CyclicPartition1D(Partition):
    """Round-robin: vertex ``v`` on rank ``v % p`` (Lumsdaine et al.).

    Balances high-degree vertices across ranks in degree-ordered inputs
    without the relabeling pass, at the price of losing range locality.
    """

    def owner(self, v: int) -> int:
        self._check_vertex(v)
        return v % self.nranks

    def owners(self, vs: np.ndarray) -> np.ndarray:
        return np.asarray(vs) % self.nranks

    def to_local(self, v: int) -> int:
        self._check_vertex(v)
        return v // self.nranks

    def to_local_many(self, vs: np.ndarray) -> np.ndarray:
        return np.asarray(vs) // self.nranks

    def local_vertices(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return np.arange(rank, self.n, self.nranks, dtype=np.int64)


def split_csr_rank(graph: CSRGraph, partition: Partition, rank: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """One rank's (offsets, adjacency) slice of a global CSR.

    The per-rank building block of :func:`split_csr`; the dynamic-graph
    subsystem also calls it directly to rebuild only the ranks an update
    batch touched.
    """
    vs = partition.local_vertices(rank)
    if vs.size == 0:
        return np.zeros(1, dtype=OFFSET_DTYPE), np.empty(0, dtype=VERTEX_DTYPE)
    starts = graph.offsets[vs]
    degs = graph.offsets[vs + 1] - starts
    local_offsets = np.zeros(vs.shape[0] + 1, dtype=OFFSET_DTYPE)
    np.cumsum(degs, out=local_offsets[1:])
    total = int(local_offsets[-1])
    if total == 0:
        adj = np.empty(0, dtype=VERTEX_DTYPE)
    elif vs[-1] - vs[0] + 1 == vs.shape[0]:
        # Contiguous range (block partition): a single slice suffices.
        adj = graph.adjacency[graph.offsets[vs[0]]:graph.offsets[vs[-1] + 1]].copy()
    else:
        # Gather each owned vertex's global adjacency row.
        adj, _ = gather_ranges(graph.adjacency, starts, degs)
    return local_offsets, np.ascontiguousarray(adj, dtype=VERTEX_DTYPE)


def split_csr(graph: CSRGraph, partition: Partition
              ) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Slice a global CSR into per-rank (offsets, adjacency) arrays.

    Per-rank offsets are rebased to 0 so each rank's pair is a standalone
    CSR over its local vertices, with **global** ids in the adjacency —
    exactly what each node exposes through its two RMA windows (Figure 3).
    Offsets use the window's int64 dtype; adjacency keeps int32.
    """
    offsets_parts: list[np.ndarray] = []
    adjacency_parts: list[np.ndarray] = []
    for rank in range(partition.nranks):
        offs, adj = split_csr_rank(graph, partition, rank)
        offsets_parts.append(offs)
        adjacency_parts.append(adj)
    return offsets_parts, adjacency_parts
