"""Tests for the TriC baseline."""

import numpy as np
import pytest

from repro.baselines.tric import TricConfig, run_tric, run_tric_buffered
from repro.core.config import LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import triangle_count_local
from repro.graph.generators import powerlaw_configuration, rmat
from repro.utils.errors import ConfigError

from tests.helpers import make_graph_suite


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_matches_local(self, nranks):
        g = rmat(7, 8, seed=5)
        res = run_tric(g, TricConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("idx", range(6))
    def test_all_graphs(self, idx):
        g = make_graph_suite()[idx]
        res = run_tric(g, TricConfig(nranks=4))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("cap", [64, 512, 4096, None])
    def test_buffer_caps_agree(self, cap):
        g = rmat(7, 8, seed=5)
        res = run_tric(g, TricConfig(nranks=4, buffer_capacity=cap))
        assert res.global_triangles == triangle_count_local(g)

    def test_unbalanced_partition_agrees(self):
        g = rmat(7, 8, seed=5)
        res = run_tric(g, TricConfig(nranks=4, balanced=False))
        assert res.global_triangles == triangle_count_local(g)

    def test_matches_async_result(self):
        g = powerlaw_configuration(256, 2048, seed=6)
        tric = run_tric(g, TricConfig(nranks=4))
        async_ = run_distributed_lcc(g, LCCConfig(nranks=4))
        assert tric.global_triangles == async_.global_triangles

    def test_implicit_lcc_matches_local(self):
        # "TriC achieves TC in a per-vertex fashion, implicitly computing
        # LCC scores" — so its per-vertex output must equal ours.
        from repro.core.local import lcc_local

        g = powerlaw_configuration(256, 2048, seed=6)
        tric = run_tric(g, TricConfig(nranks=4))
        np.testing.assert_allclose(tric.lcc, lcc_local(g), atol=1e-12)

    def test_directed_transitive_triads(self):
        # Directed semantics match the asynchronous LCC implementation.
        g = powerlaw_configuration(128, 700, seed=6, directed=True)
        tric = run_tric(g, TricConfig(nranks=4))
        assert tric.global_triangles == triangle_count_local(g)
        np.testing.assert_array_equal(
            tric.triangles_per_vertex,
            run_distributed_lcc(g, LCCConfig(nranks=4)).triangles_per_vertex)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            TricConfig(nranks=0)
        with pytest.raises(ConfigError):
            TricConfig(buffer_capacity=0)


class TestBehaviour:
    def test_synchronization_overhead_present(self):
        g = rmat(8, 8, seed=5)
        res = run_tric(g, TricConfig(nranks=8))
        assert res.outcome.total("sync_time") > 0
        assert res.outcome.total("n_alltoallv") >= 8

    def test_smaller_buffers_more_rounds(self):
        g = rmat(8, 8, seed=5)
        big = run_tric(g, TricConfig(nranks=4, buffer_capacity=1 << 20))
        small = run_tric(g, TricConfig(nranks=4, buffer_capacity=1 << 10))
        assert (small.outcome.total("n_alltoallv")
                > big.outcome.total("n_alltoallv"))
        assert small.time >= big.time

    def test_buffered_caps_memory(self):
        g = rmat(8, 8, seed=5)
        plain = run_tric(g, TricConfig(nranks=4))
        buffered = run_tric_buffered(g, nranks=4, buffer_capacity=1 << 12)
        assert buffered.peak_buffer_bytes < plain.peak_buffer_bytes

    def test_async_beats_tric_on_scale_free(self):
        # The paper's headline comparison (Figure 9 direction): on a
        # scale-free graph (randomly relabeled, as the paper prepares its
        # inputs) the asynchronous algorithm clearly wins.
        from repro.graph.csr import relabel_random
        from repro.graph.generators import rmat as rmat_gen

        g = relabel_random(rmat_gen(11, 16, seed=6), seed=1)
        tric = run_tric(g, TricConfig(nranks=16))
        async_ = run_distributed_lcc(g, LCCConfig(nranks=16, threads=12))
        assert async_.time < tric.time

    def test_tric_gap_grows_with_hub_degree(self):
        # The quadratic wedge-volume mechanism: stronger hubs hurt TriC
        # disproportionately (the paper's "up to 100x on scale-free").
        from repro.graph.csr import relabel_random

        flat = relabel_random(
            powerlaw_configuration(2048, 16384, seed=6, gamma=3.0), seed=1)
        skew = relabel_random(
            powerlaw_configuration(2048, 16384, seed=6, gamma=1.7,
                                   max_degree=512), seed=1)

        def ratio(g):
            tric = run_tric(g, TricConfig(nranks=16))
            a = run_distributed_lcc(g, LCCConfig(nranks=16, threads=12))
            return tric.time / a.time

        assert ratio(skew) > ratio(flat)

    def test_single_rank_no_comm(self):
        g = rmat(7, 8, seed=5)
        res = run_tric(g, TricConfig(nranks=1))
        assert res.global_triangles == triangle_count_local(g)
        assert res.outcome.total("bytes_sent") == 0
