"""Experiment harness: data-reuse analytics, sweeps, and the per-figure
reproduction scripts.

Every table and figure of the paper's evaluation section has a module in
:mod:`repro.analysis.experiments`; ``python -m repro.analysis.runner --all``
regenerates them all and prints paper-style tables (recorded in
EXPERIMENTS.md).
"""

from repro.analysis.tables import Table
from repro.analysis.reuse import (
    remote_read_counts,
    repetition_histogram,
    top_degree_read_share,
)
from repro.analysis.sweep import run_variants
from repro.analysis.statistics import MedianCI, median_ci, repeat_over_seeds

__all__ = [
    "Table",
    "remote_read_counts",
    "repetition_histogram",
    "top_degree_read_share",
    "run_variants",
    "MedianCI",
    "median_ci",
    "repeat_over_seeds",
]
