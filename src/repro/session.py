"""Resident-cluster sessions: one simulated cluster, many queries.

The paper frames LCC/TC as repeated analytics over a graph that stays
resident in a distributed cluster — the CLaMPI caches are valuable
precisely because accesses repeat (the Figure 4 reuse study).  The legacy
entry points (:func:`repro.core.lcc.run_distributed_lcc` and friends)
rebuild the engine, the partitioned CSR and the caches on every call,
discarding all warm state.  A :class:`Session` builds that cluster once
and serves any number of queries against it::

    from repro import Session
    from repro.core import CacheSpec, LCCConfig
    from repro.graph import load_dataset

    g = load_dataset("livejournal")
    cfg = LCCConfig(nranks=16, threads=12,
                    cache=CacheSpec.paper_split(2 * g.nbytes, g.n))
    with Session(g, cfg) as session:
        first = session.run("lcc", keep_cache=True)   # cold caches
        again = session.run("lcc", keep_cache=True)   # warm: higher hit rate
        tc = session.run("tc")                        # same resident CSR
        cells = session.sweep({                       # one partition, 3 runs
            "ssi": {"method": "ssi"},
            "binary": {"method": "binary"},
            "hybrid": {"method": "hybrid"},
        })

Kernels are registered by name (``@register_kernel``); the built-ins are
``lcc``, ``tc``, ``tc2d``, ``tric``, ``disttc`` and ``mapreduce``, and each
produces results **bit-identical** to its legacy entry point (pinned by
tests).  New workloads — per-vertex triangle queries, top-k LCC, anything
expressible over the simulated cluster — plug in the same way::

    @register_kernel("top5-lcc", description="five most clustered vertices")
    def _top5(session, config, **opts):
        res = session.run("lcc", config=config).raw
        ...

Every query starts with fresh virtual clocks and traces (a query's
simulated time never includes a previous query's), but the partitioned CSR
is shared, and with ``keep_cache=True`` the CLaMPI cache *contents* carry
over so the second query onward benefits from the paper's reuse effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.baselines.disttc import DistTCConfig, run_disttc
from repro.baselines.mapreduce import MapReduceConfig, run_mapreduce_tc
from repro.baselines.tric import TricConfig, run_tric
from repro.clampi.stats import CacheStats
from repro.core.config import CacheSpec, DistributedRunResult, LCCConfig
from repro.core.lcc import attach_caches, execute_lcc, make_partition
from repro.dynamic.delta import DeltaResult, UpdateBatch, apply_delta
from repro.dynamic.invalidate import resync_distributed
from repro.core.lcc_fast import run_distributed_lcc_fast
from repro.core.tc import execute_tc, require_undirected
from repro.core.tc2d import run_distributed_tc_2d
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.runtime.engine import Engine
from repro.runtime.trace import RankTrace
from repro.utils.errors import KernelError

__all__ = [
    "KernelResult",
    "KernelSpec",
    "Session",
    "UpdateOutcome",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "run_kernel",
    "unregister_kernel",
]


# ---------------------------------------------------------------------------
# Kernel registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KernelSpec:
    """One registered kernel: a name, a runner and its traits.

    ``resident`` kernels execute on the session's resident 1D cluster
    (engine + partitioned CSR + caches); the others own their run's
    cluster shape (2D grids, TriC's edge-balanced split, ...) and build it
    per call, exactly like their legacy entry points.
    """

    name: str
    fn: Callable[..., DistributedRunResult]
    description: str = ""
    resident: bool = False
    undirected_only: bool = False


_KERNELS: dict[str, KernelSpec] = {}


def register_kernel(name: str, *, description: str = "",
                    resident: bool = False, undirected_only: bool = False,
                    overwrite: bool = False) -> Callable:
    """Class-of-service decorator: make a function a named, runnable kernel.

    The decorated function receives ``(session, config, **opts)`` and must
    return a :class:`~repro.core.config.DistributedRunResult` (or any
    object exposing the same surface).  Re-registering an existing name
    raises unless ``overwrite=True``.
    """
    def decorator(fn: Callable) -> Callable:
        if name in _KERNELS and not overwrite:
            raise KernelError(
                f"kernel {name!r} is already registered; pass overwrite=True "
                "to replace it")
        _KERNELS[name] = KernelSpec(name=name, fn=fn, description=description,
                                    resident=resident,
                                    undirected_only=undirected_only)
        return fn
    return decorator


def unregister_kernel(name: str) -> None:
    """Remove a registered kernel (plugin teardown / tests)."""
    if name not in _KERNELS:
        raise KernelError(f"kernel {name!r} is not registered")
    del _KERNELS[name]


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name; raises :class:`KernelError` when unknown."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise KernelError(
            f"unknown kernel {name!r}; registered kernels: "
            f"{', '.join(kernel_names())}") from None


def kernel_names() -> list[str]:
    """Sorted names of every registered kernel."""
    return sorted(_KERNELS)


# ---------------------------------------------------------------------------
# Uniform result type
# ---------------------------------------------------------------------------

@dataclass
class KernelResult:
    """Uniform wrapper every ``Session.run`` returns.

    ``raw`` is the kernel's native result (a
    :class:`~repro.core.config.DistributedRunResult` for the built-ins);
    every attribute of it — ``lcc``, ``time``, ``global_triangles``,
    ``adj_cache_stats``, baseline extras like ``peak_buffer_bytes`` — is
    reachable directly on this wrapper.
    """

    kernel: str
    config: LCCConfig
    raw: Any
    reused_cluster: bool = False
    warm_cache: bool = False

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_") or name == "raw":
            raise AttributeError(name)
        return getattr(self.raw, name)

    def summary(self) -> dict[str, Any]:
        """The underlying run summary, tagged with the kernel name."""
        s = self.raw.summary()
        s["kernel"] = self.kernel
        return s


@dataclass
class UpdateOutcome:
    """What one :meth:`Session.apply_updates` call did.

    ``delta`` carries the graph-level outcome (new graph, affected set,
    applied/skipped edge counts); the remaining fields describe the
    resident-cluster resync: which ranks' slices were rebuilt, how many
    warm CLaMPI entries were invalidated vs retained, and the simulated
    cost (``time``) of the whole update — slice rebuild plus invalidation
    priced at the caches' eviction overhead, max over ranks like any job.
    """

    delta: DeltaResult
    touched_ranks: tuple[int, ...] = ()
    rebuilt_bytes: int = 0
    invalidated_offsets_entries: int = 0
    invalidated_adj_entries: int = 0
    invalidated_bytes: int = 0
    retained_entries: int = 0
    time: float = 0.0

    @property
    def graph(self):
        return self.delta.graph

    @property
    def affected(self):
        return self.delta.affected

    @property
    def invalidated_entries(self) -> int:
        return self.invalidated_offsets_entries + self.invalidated_adj_entries


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

class Session:
    """A simulated cluster held resident across queries.

    Parameters
    ----------
    graph:
        The graph to serve queries over.
    config:
        Default :class:`~repro.core.config.LCCConfig` for every query;
        per-query overrides go through ``run(..., nranks=..., cache=...)``.

    The engine and partitioned CSR are built lazily on the first resident
    query and reused while the cluster-shaping knobs (``nranks``,
    ``partition`` and the network/memory/compute models) stay unchanged;
    ``partition_builds`` counts how often the CSR was split, which sweeps
    assert stays at 1.
    """

    def __init__(self, graph: CSRGraph, config: LCCConfig | None = None):
        self.graph = graph
        self.config = config or LCCConfig()
        self.partition_builds = 0
        self.queries_run = 0
        self.updates_applied = 0
        self._engine: Optional[Engine] = None
        self._dist: Optional[DistributedCSR] = None
        self._cluster_key: Any = None
        self._off_caches: list = []
        self._adj_caches: list = []
        self._cache_spec: Optional[CacheSpec] = None
        self._last_reused = False
        self._last_warm = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Tear down the resident cluster (idempotent)."""
        if self._dist is not None:
            self._dist.close_epochs()
        self._drop_caches()
        self._engine = None
        self._dist = None
        self._cluster_key = None
        self._closed = True

    # -- queries ------------------------------------------------------------
    def run(self, kernel: str, *, config: LCCConfig | None = None,
            keep_cache: bool = False, **opts: Any) -> KernelResult:
        """Execute one registered kernel against the session's cluster.

        ``opts`` naming :class:`LCCConfig` fields (``nranks``, ``cache``,
        ``method``, ...) override the session config for this query; the
        rest are forwarded to the kernel (e.g. TriC's ``buffer_capacity``).
        ``keep_cache=True`` preserves CLaMPI cache contents from the
        previous query, reproducing the paper's reuse effect; statistics
        are still per-query.  Cached lcc/tc queries run through the batched
        cache replay (:mod:`repro.core.replay`) unless ``fast_path=False``
        or ``record_ops=True`` forces the per-edge loop.
        """
        if self._closed:
            raise KernelError("session is closed")
        spec = get_kernel(kernel)
        cfg = config or self.config
        overrides = {k: opts.pop(k) for k in list(opts)
                     if k in LCCConfig.__dataclass_fields__}
        if overrides:
            cfg = cfg.replace(**overrides)
        self._last_reused = False
        self._last_warm = False
        raw = spec.fn(self, cfg, keep_cache=keep_cache, **opts)
        self.queries_run += 1
        return KernelResult(kernel=kernel, config=cfg, raw=raw,
                            reused_cluster=self._last_reused,
                            warm_cache=self._last_warm)

    def sweep(self, variants: Mapping[str, Mapping[str, Any]], *,
              kernel: str = "lcc", keep_cache: bool = False
              ) -> dict[str, KernelResult]:
        """Run many config variants, amortizing setup across all of them.

        ``variants`` maps a variant name to its option dict (the same
        options ``run`` accepts; a ``"kernel"`` key selects a kernel other
        than the default).  Variants sharing a cluster shape reuse one
        partitioned graph — ``partition_builds`` does not grow per variant.
        """
        results: dict[str, KernelResult] = {}
        for name, options in variants.items():
            opts = dict(options)
            k = opts.pop("kernel", kernel)
            kc = opts.pop("keep_cache", keep_cache)
            results[name] = self.run(k, keep_cache=kc, **opts)
        return results

    # -- updates -------------------------------------------------------------
    def apply_updates(self, batch: UpdateBatch, *,
                      strict: bool = False) -> UpdateOutcome:
        """Apply an edge-update batch to the resident graph.

        The session's graph is replaced by the post-update CSR; if a
        cluster is resident, only the ranks owning a changed vertex have
        their window slices rebuilt, and the per-rank CLaMPI caches are
        invalidated **targeted**: exactly the entries whose cached bytes
        the update made stale are evicted, so a following
        ``run(..., keep_cache=True)`` stays warm for everything else.
        Any open epochs are closed first (an update is an epoch boundary,
        so transparent-mode caches flush as they would on a real window).

        ``strict=True`` raises on inserting an existing edge or deleting
        an absent one; the default skips them (idempotent semantics, what
        serving traffic wants).
        """
        if self._closed:
            raise KernelError("session is closed")
        res = apply_delta(self.graph, batch, strict=strict)
        self.graph = res.graph
        self.updates_applied += 1
        outcome = UpdateOutcome(delta=res)
        if self._dist is None or not res.changed:
            if self._dist is not None:
                # Nothing changed structurally; keep windows and memos.
                self._dist.graph = res.graph
            outcome.retained_entries = sum(
                len(c) for c in self._off_caches + self._adj_caches)
            return outcome

        dist, engine = self._dist, self._engine
        dist.close_epochs()
        plan = resync_distributed(dist, res.graph, res.endpoints)
        dist.rebind_graph(res.graph)
        outcome.touched_ranks = plan.touched_ranks
        outcome.rebuilt_bytes = plan.rebuilt_bytes

        inval_dt = [0.0] * engine.nranks
        for caches, keys, counter in (
                (self._off_caches, plan.offsets_keys,
                 "invalidated_offsets_entries"),
                (self._adj_caches, plan.adjacency_keys,
                 "invalidated_adj_entries")):
            for cache in caches:
                mgmt_before = cache.stats.mgmt_time
                dropped, dropped_bytes = cache.invalidate(keys)
                # The cache prices its own invalidations (mgmt_time);
                # charge exactly that, whatever its cost model is.
                inval_dt[cache.rank] += cache.stats.mgmt_time - mgmt_before
                setattr(outcome, counter, getattr(outcome, counter) + dropped)
                outcome.invalidated_bytes += dropped_bytes
        outcome.retained_entries = sum(
            len(c) for c in self._off_caches + self._adj_caches)

        # Price the rebuild with the model the resident cluster was
        # actually built under (a per-run override config may differ
        # from the session default).
        memory = engine.contexts[0].memory
        rebuilt = plan.rebuilt_bytes_by_rank
        outcome.time = max(
            ((memory.local_read_time(rebuilt[r]) if r in rebuilt else 0.0)
             + inval_dt[r]) for r in range(engine.nranks))
        return outcome

    # -- resident cluster ----------------------------------------------------
    def resident_cluster(self, config: LCCConfig | None = None,
                         keep_cache: bool = False, need_epochs: bool = True
                         ) -> tuple[Engine, DistributedCSR, list, list]:
        """Build or reuse the engine + partitioned CSR for ``config``.

        Returns ``(engine, dist, offsets_caches, adj_caches)``.  This is
        the hook custom resident kernels use: per-rank clocks and traces
        are always reset so every query starts cold (simulated times match
        a standalone run), while the CSR split — and, with
        ``keep_cache=True``, the CLaMPI cache contents — are reused while
        the cluster shape is unchanged.  Epochs are (re)opened unless
        ``need_epochs=False``; kernels that issue RMA should call
        ``dist.close_epochs()`` when done, as the built-ins do.
        """
        config = config or self.config
        key = (config.nranks, config.partition, config.network,
               config.memory, config.compute, config.record_ops)
        rebuilt = self._engine is None or key != self._cluster_key
        if rebuilt:
            if self._dist is not None:
                self._dist.close_epochs()
            self._drop_caches()
            engine = Engine(config.nranks, network=config.network,
                            memory=config.memory, compute=config.compute,
                            record_ops=config.record_ops)
            self._dist = DistributedCSR(
                self.graph, make_partition(config, self.graph.n), engine)
            self._engine = engine
            self._cluster_key = key
            self.partition_builds += 1
        engine, dist = self._engine, self._dist
        for ctx in engine.contexts:
            ctx.now = 0.0
            ctx.trace = RankTrace(rank=ctx.rank, record_ops=config.record_ops)
        if need_epochs:
            # execute_lcc/execute_tc close epochs after each query.
            for rank in range(engine.nranks):
                for win in (dist.w_offsets, dist.w_adj):
                    if not win.epoch_open(rank):
                        win.lock_all(rank)
        self._configure_caches(config, keep_cache, rebuilt)
        self._last_reused = not rebuilt
        return engine, dist, self._off_caches, self._adj_caches

    def _configure_caches(self, config: LCCConfig, keep_cache: bool,
                          rebuilt: bool) -> None:
        spec = config.cache
        if spec is None:
            self._drop_caches()
            return
        warm = (keep_cache and not rebuilt and spec == self._cache_spec
                and bool(self._off_caches or self._adj_caches))
        if warm:
            # Contents stay resident; statistics are per-query.
            for cache in self._off_caches + self._adj_caches:
                cache.stats = CacheStats()
        else:
            self._drop_caches()
            self._off_caches, self._adj_caches = attach_caches(
                self._engine, self._dist, spec, self.graph.n)
        self._cache_spec = spec
        self._last_warm = warm

    def _drop_caches(self) -> None:
        if self._engine is not None and self._dist is not None:
            for ctx in self._engine.contexts:
                ctx.detach_cache(self._dist.w_offsets)
                ctx.detach_cache(self._dist.w_adj)
        self._off_caches = []
        self._adj_caches = []
        self._cache_spec = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else (
            "resident" if self._engine is not None else "idle")
        return (f"Session(graph={self.graph.name or '?'}, {state}, "
                f"queries={self.queries_run}, "
                f"partition_builds={self.partition_builds})")


def run_kernel(kernel: str, graph: CSRGraph,
               config: LCCConfig | None = None, **opts: Any) -> KernelResult:
    """One-shot convenience: run a single kernel on a throwaway session."""
    with Session(graph, config) as session:
        return session.run(kernel, **opts)


# ---------------------------------------------------------------------------
# Built-in kernels
# ---------------------------------------------------------------------------

@register_kernel("lcc", resident=True,
                 description="asynchronous per-vertex LCC (Algorithm 3)")
def _kernel_lcc(session: Session, config: LCCConfig, *,
                keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    if config.fast_path and config.cache is None and not config.record_ops:
        _, dist, _, _ = session.resident_cluster(config, keep_cache,
                                                 need_epochs=False)
        return run_distributed_lcc_fast(session.graph, config, dist=dist)
    engine, dist, off, adj = session.resident_cluster(config, keep_cache)
    return execute_lcc(engine, dist, config, off, adj)


@register_kernel("tc", resident=True, undirected_only=True,
                 description="asynchronous global triangle count")
def _kernel_tc(session: Session, config: LCCConfig, *,
               keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    require_undirected(session.graph)
    engine, dist, off, adj = session.resident_cluster(config, keep_cache)
    return execute_tc(engine, dist, config, off, adj)


@register_kernel("tc2d", undirected_only=True,
                 description="asynchronous 2D-grid triangle count")
def _kernel_tc2d(session: Session, config: LCCConfig, *,
                 keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    return run_distributed_tc_2d(session.graph, config)


@register_kernel("tric",
                 description="TriC baseline (blocking query/response rounds)")
def _kernel_tric(session: Session, config: LCCConfig, *,
                 keep_cache: bool = False, buffer_capacity: int | None = None,
                 balanced: bool = True, **_: Any) -> DistributedRunResult:
    return run_tric(session.graph, TricConfig(
        nranks=config.nranks, buffer_capacity=buffer_capacity,
        balanced=balanced, network=config.network, memory=config.memory,
        compute=config.compute))


@register_kernel("disttc", undirected_only=True,
                 description="DistTC baseline (shadow-edge replication)")
def _kernel_disttc(session: Session, config: LCCConfig, *,
                   keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    return run_disttc(session.graph, DistTCConfig(
        nranks=config.nranks, network=config.network, memory=config.memory,
        compute=config.compute))


@register_kernel("mapreduce", undirected_only=True,
                 description="MapReduce wedge-check baseline")
def _kernel_mapreduce(session: Session, config: LCCConfig, *,
                      keep_cache: bool = False, **_: Any
                      ) -> DistributedRunResult:
    return run_mapreduce_tc(session.graph, MapReduceConfig(
        nranks=config.nranks, network=config.network, memory=config.memory,
        compute=config.compute))
