"""Lightweight logging facade.

The library logs under the ``repro`` namespace; experiments pass
``verbose=True`` to bump the level.  We never call ``basicConfig`` at import
time so that embedding applications keep control of handlers.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro.`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_verbose(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the root ``repro`` logger (idempotent)."""
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)


@contextmanager
def timed(logger: logging.Logger, label: str) -> Iterator[None]:
    """Log wall-clock duration of a block at DEBUG level."""
    start = time.perf_counter()
    try:
        yield
    finally:
        logger.debug("%s took %.3f s", label, time.perf_counter() - start)
