"""The CLaMPI cache proper.

One :class:`ClampiCache` instance sits between one initiating rank and one
RMA window (Figure 3 of the paper: MPI_Gets are intercepted, looked up in
the cache, and only on a miss does the remote access happen, after which
the retrieved data is stored).

Keyed by ``(target_rank, offset, count)``, entries hold the fetched bytes;
the index is a bounded-probing hash table and the data lives in a bounded
buffer managed by a best-fit allocator (AVL free list).  Evictions are
driven by a :class:`~repro.clampi.scores.ScorePolicy`; victim candidates
are drawn with deterministic sampling (a standard approximation of
global-minimum-score selection that keeps eviction O(sample) — exact
selection is used inside hash probe windows, where the candidate set is
already small).

The cache also *prices* itself: every lookup/insert/eviction charges
management overhead, which is how the paper's "CLaMPI's overhead leads to
worse performance than the non-cached version" regime (high compulsory
misses, Section IV-D2 scenario 2) emerges in our simulation.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.clampi.allocator import BufferAllocator
from repro.clampi.hashtable import HashIndex
from repro.clampi.scores import DefaultScorePolicy, ScorePolicy
from repro.clampi.stats import CacheStats
from repro.runtime.network import MemoryModel, NetworkModel
from repro.runtime.window import Window
from repro.utils.errors import CacheError
from repro.utils.units import NS, US


class ConsistencyMode(enum.Enum):
    """CLaMPI's three consistency modes (paper Section II-F)."""

    TRANSPARENT = "transparent"    # flush at every epoch closure
    ALWAYS_CACHE = "always_cache"  # data is read-only; never flush
    USER_DEFINED = "user_defined"  # application calls flush() explicitly


#: Application-score callback: ``(target, offset, count, data) -> score``.
AppScoreFn = Callable[[int, int, int, np.ndarray], float]


@dataclass
class ClampiConfig:
    """Tuning knobs of one cache instance.

    ``capacity_bytes`` and ``nslots`` are the two parameters the paper's
    Section III-B1 is about; ``score_policy`` switches between stock CLaMPI
    and the degree-centrality extension; the ``*_overhead`` constants price
    cache management (they are what makes caching non-free).
    """

    capacity_bytes: int
    nslots: int = 1024
    probe_limit: int = 8
    mode: ConsistencyMode = ConsistencyMode.ALWAYS_CACHE
    score_policy: ScorePolicy = field(default_factory=DefaultScorePolicy)
    app_score_fn: Optional[AppScoreFn] = None
    eviction_sample: int = 16
    max_evictions_per_insert: int = 64
    lookup_overhead: float = 150 * NS
    insert_overhead: float = 250 * NS
    eviction_overhead: float = 200 * NS
    seed: int = 0x5EED
    adaptive: "AdaptiveConfig | None" = None  # resolved lazily to avoid cycle

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise CacheError(f"capacity_bytes must be > 0, got {self.capacity_bytes}")
        if self.nslots <= 0:
            raise CacheError(f"nslots must be > 0, got {self.nslots}")
        if self.eviction_sample <= 0:
            raise CacheError("eviction_sample must be > 0")
        if self.score_policy.uses_app_score and self.app_score_fn is None:
            raise CacheError(
                "an application-score policy needs app_score_fn to supply scores"
            )


class CacheEntry:
    """One cached get result."""

    __slots__ = ("key", "data", "buffer_offset", "nbytes", "last_access",
                 "n_accesses", "app_score")

    def __init__(self, key: tuple, data: np.ndarray, buffer_offset: int,
                 nbytes: int, clock: int, app_score: float | None):
        self.key = key
        self.data = data
        self.buffer_offset = buffer_offset
        self.nbytes = nbytes
        self.last_access = clock
        self.n_accesses = 1
        self.app_score = app_score


class ClampiCache:
    """Per-(rank, window) RMA cache implementing the CLaMPI design."""

    def __init__(
        self,
        window: Window,
        rank: int,
        config: ClampiConfig,
        *,
        network: NetworkModel | None = None,
        memory: MemoryModel | None = None,
    ):
        self.window = window
        self.rank = rank
        self.config = config
        self.network = network or NetworkModel.aries()
        self.memory = memory or MemoryModel()
        self.stats = CacheStats()
        self._clock = 0  # logical access clock (drives recency)
        self._seen: set[tuple] = set()  # for compulsory-miss classification
        self._rng = random.Random(config.seed ^ (rank * 0x9E3779B9))
        self._keys: list[tuple] = []       # sampling support:
        self._key_pos: dict[tuple, int] = {}  # key -> index in _keys
        self.allocator = BufferAllocator(config.capacity_bytes)
        self.index = HashIndex(config.nslots, config.probe_limit)
        self._tuner = None
        if config.adaptive is not None:
            from repro.clampi.adaptive import AdaptiveTuner

            self._tuner = AdaptiveTuner(config.adaptive)

    # -- CacheProtocol -----------------------------------------------------------
    def access(self, target: int, offset: int, count: int
               ) -> tuple[np.ndarray, float, bool]:
        """Serve a get through the cache.

        Returns ``(data, duration_seconds, hit)``.  Exact-match semantics:
        a cached ``(target, offset, count)`` triple only serves an identical
        request, as in CLaMPI (no partial-range reuse).
        """
        self._clock += 1
        cfg = self.config
        duration = cfg.lookup_overhead
        self.stats.mgmt_time += cfg.lookup_overhead
        key = (target, offset, count)
        entry: CacheEntry | None = self.index.lookup(key)

        if entry is not None:
            entry.last_access = self._clock
            entry.n_accesses += 1
            duration += self.memory.cache_service_time(entry.nbytes)
            self.stats.hits += 1
            self.stats.bytes_served_from_cache += entry.nbytes
            return entry.data, duration, True

        # Miss: fetch over the network.
        self.stats.misses += 1
        if key not in self._seen:
            self.stats.compulsory_misses += 1
            self._seen.add(key)
        data = self.window.read(self.rank, target, offset, count)
        nbytes = data.nbytes
        duration += self.network.get_time(nbytes)
        self.stats.bytes_fetched += nbytes

        duration += self._try_insert(key, data, target, offset, count, nbytes)

        if self._tuner is not None:
            duration += self._tuner.observe(self)

        return data, duration, False

    def on_epoch_close(self) -> None:
        """Epoch-closure hook: transparent mode flushes (paper Section II-F)."""
        if self.config.mode is ConsistencyMode.TRANSPARENT:
            self.flush()

    # -- insertion & eviction ------------------------------------------------------
    def _prospective_score(self, key: tuple, app_score: float | None) -> float:
        """Score the candidate entry *as if* freshly inserted (for guards)."""
        probe = CacheEntry(key, np.empty(0), 0, 0, self._clock, app_score)
        return self.config.score_policy.victim_score(probe, self.allocator,
                                                     self._clock)

    def _try_insert(self, key: tuple, data: np.ndarray, target: int,
                    offset: int, count: int, nbytes: int) -> float:
        """Attempt to cache a fetched entry; returns management time spent."""
        cfg = self.config
        t = cfg.insert_overhead
        self.stats.mgmt_time += cfg.insert_overhead
        if nbytes <= 0 or nbytes > cfg.capacity_bytes:
            self.stats.insert_failures += 1
            return t

        app_score: float | None = None
        if cfg.app_score_fn is not None:
            app_score = float(cfg.app_score_fn(target, offset, count, data))
        guard = cfg.score_policy.uses_app_score
        new_score = self._prospective_score(key, app_score) if guard else None

        # 1. Buffer space (capacity evictions).
        buf_off = self.allocator.alloc(nbytes)
        evictions = 0
        while buf_off is None:
            if evictions >= cfg.max_evictions_per_insert:
                self.stats.insert_failures += 1
                return t
            victim = self._sample_victim()
            if victim is None:
                self.stats.insert_failures += 1
                return t
            if guard and self.config.score_policy.victim_score(
                victim, self.allocator, self._clock
            ) > new_score:
                # Everything sampled is more valuable than the newcomer:
                # do not cache (protects high-degree entries, paper III-B2).
                self.stats.insert_failures += 1
                return t
            self._evict(victim, conflict=False)
            t += cfg.eviction_overhead
            self.stats.mgmt_time += cfg.eviction_overhead
            evictions += 1
            buf_off = self.allocator.alloc(nbytes)

        entry = CacheEntry(key, data, buf_off, nbytes, self._clock, app_score)

        # 2. Hash slot (conflict evictions inside the probe window).
        if not self.index.insert(key, entry):
            self.stats.hash_conflicts += 1
            window_entries = [e for _, e in self.index.probe_window(key)]
            if not window_entries:
                # Pathological (probe window empty yet insert failed).
                self.allocator.free(buf_off)
                self.stats.insert_failures += 1
                return t  # pragma: no cover - defensive
            victim = min(
                window_entries,
                key=lambda e: cfg.score_policy.victim_score(
                    e, self.allocator, self._clock),
            )
            if guard and cfg.score_policy.victim_score(
                victim, self.allocator, self._clock
            ) > new_score:
                self.allocator.free(buf_off)
                self.stats.insert_failures += 1
                return t
            self._evict(victim, conflict=True)
            t += cfg.eviction_overhead
            self.stats.mgmt_time += cfg.eviction_overhead
            if not self.index.insert(key, entry):  # pragma: no cover - defensive
                self.allocator.free(buf_off)
                self.stats.insert_failures += 1
                return t

        self._key_pos[key] = len(self._keys)
        self._keys.append(key)
        return t

    def _sample_victim(self) -> CacheEntry | None:
        """Pick the lowest-score entry among a deterministic random sample."""
        n = len(self._keys)
        if n == 0:
            return None
        sample_size = min(self.config.eviction_sample, n)
        if sample_size == n:
            candidates = list(self._keys)
        else:
            candidates = [self._keys[self._rng.randrange(n)]
                          for _ in range(sample_size)]
        policy = self.config.score_policy
        best_key = min(
            candidates,
            key=lambda k: policy.victim_score(
                self.index.lookup(k), self.allocator, self._clock),
        )
        return self.index.lookup(best_key)

    def _evict(self, entry: CacheEntry, *, conflict: bool) -> None:
        """Remove an entry from index, buffer and sampling list."""
        self.index.remove(entry.key)
        self.allocator.free(entry.buffer_offset)
        pos = self._key_pos.pop(entry.key)
        last = self._keys.pop()
        if pos < len(self._keys):
            self._keys[pos] = last
            self._key_pos[last] = pos
        if conflict:
            self.stats.conflict_evictions += 1
        else:
            self.stats.capacity_evictions += 1

    # -- maintenance ---------------------------------------------------------------
    def flush(self) -> None:
        """Drop every entry (compulsory-miss history is preserved)."""
        self.index.clear()
        self.allocator = BufferAllocator(self.config.capacity_bytes)
        self._keys.clear()
        self._key_pos.clear()
        self.stats.flushes += 1

    def resize(self, *, nslots: int | None = None,
               capacity_bytes: int | None = None) -> None:
        """Adaptive-tuning hook: change geometry, flushing as CLaMPI does."""
        if nslots is not None:
            if nslots <= 0:
                raise CacheError(f"nslots must be > 0, got {nslots}")
            self.config.nslots = int(nslots)
        if capacity_bytes is not None:
            if capacity_bytes <= 0:
                raise CacheError(f"capacity must be > 0, got {capacity_bytes}")
            self.config.capacity_bytes = int(capacity_bytes)
        self.index = HashIndex(self.config.nslots, self.config.probe_limit)
        self.allocator = BufferAllocator(self.config.capacity_bytes)
        self._keys.clear()
        self._key_pos.clear()
        self.stats.flushes += 1
        self.stats.adaptive_resizes += 1

    # -- inspection -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    @property
    def used_bytes(self) -> int:
        return self.allocator.used_bytes

    def entries(self) -> list[CacheEntry]:
        """Snapshot of live entries (reporting / tests)."""
        return [self.index.lookup(k) for k in self._keys]

    def check_invariants(self) -> None:
        """Cross-structure consistency (exercised by property tests)."""
        self.allocator.check_invariants()
        assert len(self._keys) == len(self._key_pos) == len(self.index)
        total = 0
        for key in self._keys:
            entry = self.index.lookup(key)
            assert entry is not None, f"indexed key missing: {key}"
            assert self.allocator.block_size(entry.buffer_offset) == entry.nbytes
            total += entry.nbytes
        assert total == self.allocator.used_bytes
