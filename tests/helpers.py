"""Shared helpers importable from any test module."""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    ego_circles,
    erdos_renyi,
    powerlaw_configuration,
    ring_of_cliques,
    rmat,
)


def make_graph_suite(seed: int = 42) -> list[CSRGraph]:
    """A diverse set of small graphs for cross-implementation checks."""
    return [
        complete_graph(6),
        ring_of_cliques(3, 4),
        rmat(7, 8, seed=seed),
        erdos_renyi(96, 700, seed=seed),
        powerlaw_configuration(128, 900, seed=seed),
        ego_circles(n_egos=2, circle_size=8, n_circles_per_ego=2, seed=seed),
    ]
