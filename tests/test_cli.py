"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "livejournal" in out
        assert "rmat-s21-ef16" in out


class TestInfo:
    def test_dataset_info(self, capsys):
        assert main(["info", "skitter", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out
        assert "degree_max" in out

    def test_info_json(self, capsys):
        assert main(["info", "skitter", "--scale", "0.2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["vertices"] > 0

    def test_input_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n0 2\n")
        assert main(["info", "--input", str(path)]) == 0
        assert "vertices" in capsys.readouterr().out

    def test_missing_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["info"])


class TestLcc:
    def test_lcc_run(self, capsys):
        assert main(["lcc", "skitter", "--scale", "0.2",
                     "--nranks", "4"]) == 0
        out = capsys.readouterr().out
        assert "simulated_time" in out
        assert "global_triangles" in out

    def test_lcc_cached_json(self, capsys):
        assert main(["lcc", "skitter", "--scale", "0.2", "--nranks", "4",
                     "--cache", "degree", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hit_rate"] >= 0

    def test_lcc_top_and_output(self, tmp_path, capsys):
        out_file = tmp_path / "scores.npy"
        assert main(["lcc", "skitter", "--scale", "0.2", "--nranks", "2",
                     "--top", "3", "--json", "--output", str(out_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["top_lcc_vertices"]) == 3
        scores = np.load(out_file)
        assert scores.shape[0] == payload["vertices"]


class TestTc:
    @pytest.mark.parametrize("algorithm", ["async", "async-2d", "tric",
                                           "disttc", "mapreduce"])
    def test_all_algorithms_agree(self, algorithm, capsys):
        assert main(["tc", "skitter", "--scale", "0.15", "--nranks", "4",
                     "--algorithm", algorithm, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["triangles"] > 0

    def test_triangle_counts_consistent(self, capsys):
        counts = set()
        for algorithm in ("async", "tric", "mapreduce"):
            main(["tc", "skitter", "--scale", "0.15", "--nranks", "4",
                  "--algorithm", algorithm, "--json"])
            counts.add(json.loads(capsys.readouterr().out)["triangles"])
        assert len(counts) == 1


class TestKernels:
    def test_lists_every_registered_kernel(self, capsys):
        from repro.session import kernel_names

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in kernel_names():
            assert name in out
        assert "resident" in out  # traits are shown

    def test_run_unknown_kernel_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "skitter", "--scale", "0.2", "--kernel", "nope"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_run_unknown_dataset_rejected(self):
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown dataset"):
            main(["run", "no-such-dataset", "--kernel", "lcc"])

    def test_run_without_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--kernel", "lcc"])


class TestBench:
    def test_bench_json_round_trip(self, tmp_path, capsys):
        from repro.analysis.benchreport import REPORT_KEYS, check_report

        out_file = tmp_path / "BENCH_kernels.json"
        assert main(["bench", "--quick", "--json", str(out_file)]) == 0
        assert out_file.exists()
        report = json.loads(out_file.read_text())
        for key in REPORT_KEYS:
            assert key in report
        check_report(report)  # raises on any non-finite value
        assert report["quick"] is True
        # Every kernel × graph cell records wall clock + simulated time.
        assert report["kernels"]
        for row in report["kernels"].values():
            assert row["wall_clock_s"] > 0
            assert row["simulated_time_s"] > 0
        # The cached-replay section proves the fast path stayed exact.
        assert report["cached_replay"]
        for row in report["cached_replay"].values():
            assert row["bit_identical"] is True
            assert row["warm_speedup"] > 0
        out = capsys.readouterr().out
        assert "batched replay" in out
