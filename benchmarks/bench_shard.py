"""Shardstore benchmarks: commit barrier cost and routed read bursts.

Wall-clock timings of the sharding layer itself.  The simulated-clock
numbers (read scaling vs replica count, cross- vs single-shard commit
latency, the failover drill) are recorded per PR in ``BENCH_shard.json``
by ``repro shard --bench``; here we watch the real cost of the two hot
paths — the k-shard commit barrier with its reassembly digest proof, and
a routed read burst across a replica set.
"""

import pytest

from repro.analysis.serving import bench_serve_config
from repro.dynamic.delta import random_update_batch
from repro.graph.generators import powerlaw_configuration
from repro.serve import generate_workload
from repro.serve.workload import WorkloadSpec
from repro.shardstore import ReplicaSet, ShardedGraphStore
from repro.utils.rng import derive_seed

NRANKS = 8
NSHARDS = 4


@pytest.fixture(scope="module")
def graph():
    return powerlaw_configuration(2000, 12000, gamma=2.4, seed=11)


@pytest.fixture(scope="module")
def batches(graph):
    return [random_update_batch(
        graph, n_edges=64, delete_fraction=0.25,
        seed=derive_seed(11, "bench-shard", r)) for r in range(4)]


def test_cross_shard_commits(benchmark, graph, batches):
    """Full commit barrier: split, per-shard apply, reassemble, prove."""

    def run():
        store = ShardedGraphStore({"g": graph}, nshards=NSHARDS,
                                  nranks=NRANKS)
        for batch in batches:
            store.apply("g", batch)
        return store

    store = benchmark.pedantic(run, iterations=1, rounds=5)
    assert store.version("g").version == len(batches)
    assert store.check_version_vector("g") == []


def test_unsharded_commits(benchmark, graph, batches):
    """The unsharded baseline the barrier overhead is judged against."""
    from repro.graphstore import GraphStore

    def run():
        store = GraphStore({"g": graph})
        for batch in batches:
            store.apply("g", batch)
        return store

    store = benchmark.pedantic(run, iterations=1, rounds=5)
    assert store.version("g").version == len(batches)


def test_replica_read_burst(benchmark):
    """Routed query burst over 3 replicas, resident pools warm."""
    from repro.serve import default_catalog

    catalog = default_catalog(scale=0.4)
    requests = generate_workload(WorkloadSpec(
        n_queries=48, arrival_rate=4000.0, n_tenants=8,
        graphs=tuple(catalog), kernels=("lcc",), update_mix=0.0, seed=7))
    rs = ReplicaSet(catalog, replicas=3, nshards=2, nranks=4)
    outcome = benchmark.pedantic(
        rs.serve_reads, args=(requests, bench_serve_config()),
        iterations=1, rounds=3)
    assert len(outcome.records) == len(requests)
