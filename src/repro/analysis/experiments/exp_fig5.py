"""Figure 5: cache-entry characterization on Facebook circles (2 nodes).

Observation 3.1: in ``C_adj`` the entry size equals the vertex degree and
correlates with reuse.  Observation 3.2: ``C_offsets`` entries are fixed
size, but their access frequency still follows the target's degree.  We
report the rank correlation between degree and remote-access count, and a
binned degree -> (accesses, entry size) profile.
"""

from __future__ import annotations

import scipy.stats as stats

from repro.analysis.reuse import fig5_scatter
from repro.analysis.tables import Table
from repro.graph.datasets import load_dataset


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    g = load_dataset("facebook-circles", scale=scale, seed=seed)
    degrees, accesses, entry_bytes = fig5_scatter(g, nranks=2)

    corr = Table(["relation", "Spearman rho", "interpretation"],
                 title=f"Figure 5: degree vs remote accesses on {g.name}, 2 nodes")
    rho_acc = float(stats.spearmanr(degrees, accesses).statistic)
    corr.add_row("degree ~ remote accesses (C_offsets reuse)",
                 round(rho_acc, 3),
                 "higher-degree vertices are read more (Obs. 3.2)")
    rho_size = float(stats.spearmanr(degrees, entry_bytes).statistic)
    corr.add_row("degree ~ C_adj entry size", round(rho_size, 3),
                 "entry size is the degree itself (Obs. 3.1)")

    binned = Table(["degree bin", "vertices", "mean remote accesses",
                    "mean C_adj entry (B)"],
                   title="Binned profile")
    edges = [1, 4, 16, 64, 256, 10**9]
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (degrees >= lo) & (degrees < hi)
        if not mask.any():
            continue
        label = f"[{lo}, {hi})" if hi < 10**9 else f">= {lo}"
        binned.add_row(label, int(mask.sum()),
                       round(float(accesses[mask].mean()), 1),
                       round(float(entry_bytes[mask].mean()), 1))
    return [corr, binned]


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
