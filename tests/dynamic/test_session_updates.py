"""Session.apply_updates: resync, targeted invalidation, kernel parity."""

import numpy as np
import pytest

from repro.clampi.cache import ConsistencyMode
from repro.core.config import CacheSpec, LCCConfig
from repro.dynamic import IncrementalState, UpdateBatch, random_update_batch
from repro.graph.generators import powerlaw_configuration
from repro.session import Session, get_kernel, kernel_names
from repro.utils.errors import KernelError


@pytest.fixture(scope="module")
def graph():
    return powerlaw_configuration(240, 1400, seed=21, name="dyn")


def cached_config(graph, mode=ConsistencyMode.ALWAYS_CACHE, **kw):
    spec = CacheSpec(offsets_bytes=max(1, int(0.5 * graph.nbytes)),
                     adj_bytes=graph.nbytes, mode=mode)
    return LCCConfig(nranks=6, threads=4, cache=spec, **kw)


BATCH_SEED = 33


class TestParityAfterUpdates:
    @pytest.mark.parametrize("mode", [ConsistencyMode.ALWAYS_CACHE,
                                      ConsistencyMode.TRANSPARENT])
    @pytest.mark.parametrize("warm", [False, True])
    def test_lcc_tc_bit_identical_to_fresh(self, graph, mode, warm):
        """Post-update cached queries == cold full recompute, all modes."""
        cfg = cached_config(graph, mode)
        with Session(graph, cfg) as session:
            if warm:
                session.run("lcc", keep_cache=True)
                session.run("lcc", keep_cache=True)
            batch = random_update_batch(graph, 14, 0.25, seed=BATCH_SEED)
            session.apply_updates(batch)
            post_lcc = session.run("lcc", keep_cache=warm)
            post_tc = session.run("tc", keep_cache=warm)
            new_graph = session.graph
        with Session(new_graph, cfg) as fresh:
            ref_lcc = fresh.run("lcc")
            ref_tc = fresh.run("tc")
        np.testing.assert_array_equal(post_lcc.lcc, ref_lcc.lcc)
        np.testing.assert_array_equal(post_lcc.triangles_per_vertex,
                                      ref_lcc.triangles_per_vertex)
        assert post_tc.global_triangles == ref_tc.global_triangles

    def test_all_six_kernels_match_incremental_fold(self, graph):
        """Acceptance gate: every registered kernel's primary output after
        an update equals the incremental fold's prediction bit-for-bit."""
        state = IncrementalState.from_graph(graph)
        batch = random_update_batch(graph, 12, 0.25, seed=BATCH_SEED + 1)
        state.apply(batch)
        with Session(graph, cached_config(graph)) as session:
            session.run("lcc", keep_cache=True)  # make the cluster resident
            session.apply_updates(batch)
            for kernel in kernel_names():
                if get_kernel(kernel).square_grid_only:
                    # nranks=6 is a rectangular grid; the SUMMA kernels'
                    # post-update parity is pinned at nranks=9 in
                    # tests/core/test_linalg.py::TestDynamicUpdates.
                    continue
                result = session.run(kernel)
                assert (int(result.global_triangles)
                        == state.global_triangles), kernel
                if result.lcc is not None:
                    np.testing.assert_array_equal(result.lcc, state.lcc)

    def test_cyclic_partition_resync(self, graph):
        cfg = cached_config(graph, partition="cyclic")
        with Session(graph, cfg) as session:
            session.run("lcc", keep_cache=True)
            out = session.apply_updates(
                random_update_batch(graph, 10, 0.5, seed=BATCH_SEED + 2))
            assert out.touched_ranks
            post = session.run("lcc", keep_cache=True)
        with Session(session.graph, cfg) as fresh:
            ref = fresh.run("lcc")
        np.testing.assert_array_equal(post.lcc, ref.lcc)

    def test_repeated_update_query_cycles(self, graph):
        cfg = cached_config(graph)
        state = IncrementalState.from_graph(graph)
        with Session(graph, cfg) as session:
            for step in range(4):
                batch = random_update_batch(session.graph, 8, 0.25,
                                            seed=100 + step)
                session.apply_updates(batch)
                state.apply(batch)
                res = session.run("lcc", keep_cache=True)
                np.testing.assert_array_equal(res.lcc, state.lcc)
        assert state.verify()


class TestInvalidationBookkeeping:
    def test_warmth_retained_for_unaffected(self, graph):
        cfg = cached_config(graph)
        with Session(graph, cfg) as session:
            session.run("lcc", keep_cache=True)
            session.run("lcc", keep_cache=True)
            out = session.apply_updates(
                random_update_batch(graph, 12, 0.25, seed=BATCH_SEED + 3))
            assert out.invalidated_entries > 0
            assert out.retained_entries > 0
            assert out.time > 0.0
            post = session.run("lcc", keep_cache=True)
            assert post.warm_cache
        with Session(session.graph, cfg) as fresh:
            cold = fresh.run("lcc", keep_cache=True)
        # Hits beyond the cold run are served by retained warm entries.
        assert (post.adj_cache_stats["hits"]
                > cold.adj_cache_stats["hits"])

    def test_invalidation_counted_in_cache_stats(self, graph):
        with Session(graph, cached_config(graph)) as session:
            session.run("lcc", keep_cache=True)
            out = session.apply_updates(
                random_update_batch(graph, 12, 0.25, seed=BATCH_SEED + 4))
            merged_invalidations = sum(
                c.stats.invalidations
                for c in session._off_caches + session._adj_caches)
            assert merged_invalidations == out.invalidated_entries
            assert out.invalidated_bytes > 0

    def test_noop_batch_touches_nothing(self, graph):
        with Session(graph, cached_config(graph)) as session:
            session.run("lcc", keep_cache=True)
            entries_before = sum(
                len(c) for c in session._off_caches + session._adj_caches)
            out = session.apply_updates(UpdateBatch.build(n=graph.n))
            assert not out.delta.changed
            assert out.touched_ranks == ()
            assert out.invalidated_entries == 0
            assert out.retained_entries == entries_before

    def test_update_before_first_query(self, graph):
        with Session(graph, cached_config(graph)) as session:
            out = session.apply_updates(
                random_update_batch(graph, 10, 0.25, seed=BATCH_SEED + 5))
            assert out.touched_ranks == ()  # nothing resident yet
            res = session.run("lcc")
        with Session(session.graph, cached_config(graph)) as fresh:
            ref = fresh.run("lcc")
        np.testing.assert_array_equal(res.lcc, ref.lcc)

    def test_cacheless_session_update(self, graph):
        cfg = LCCConfig(nranks=4, threads=2)
        with Session(graph, cfg) as session:
            session.run("lcc")
            out = session.apply_updates(
                random_update_batch(graph, 10, 0.25, seed=BATCH_SEED + 6))
            assert out.invalidated_entries == 0
            res = session.run("lcc")
        from repro.core.local import lcc_local

        np.testing.assert_allclose(res.lcc, lcc_local(session.graph))

    def test_closed_session_rejects_updates(self, graph):
        session = Session(graph, cached_config(graph))
        session.close()
        with pytest.raises(KernelError):
            session.apply_updates(UpdateBatch.build(n=graph.n))

    def test_update_cost_priced_under_resident_memory_model(self, graph):
        """A per-run override config shapes the resident cluster; update
        costs must use that cluster's memory model, not the default."""
        from repro.runtime.network import MemoryModel

        slow = MemoryModel(dram_latency=1e-3)  # 10000x the default latency
        batch = random_update_batch(graph, 10, 0.25, seed=BATCH_SEED + 7)
        with Session(graph, cached_config(graph)) as default_s:
            default_s.run("lcc", keep_cache=True)
            fast_time = default_s.apply_updates(batch).time
        with Session(graph, cached_config(graph)) as s:
            s.run("lcc", config=cached_config(graph, memory=slow),
                  keep_cache=True)
            slow_time = s.apply_updates(batch).time
        assert slow_time > fast_time

    def test_updates_applied_counter(self, graph):
        with Session(graph, cached_config(graph)) as session:
            assert session.updates_applied == 0
            session.apply_updates(UpdateBatch.build(n=graph.n))
            session.apply_updates(UpdateBatch.build(n=graph.n))
            assert session.updates_applied == 2
