"""Graph substrate: CSR storage, generators, partitioning, datasets, I/O.

The paper stores graphs in CSR (Compressed Sparse Row) with two arrays —
``offsets`` and ``adjacencies`` — removes vertices of degree < 2 (they
cannot participate in triangles), optionally applies a random relabeling
to de-cluster high-degree vertices, and distributes vertices over ranks
with a 1D block partition (cyclic distribution is implemented as the
balanced alternative the paper cites).
"""

from repro.graph.csr import CSRGraph, remove_low_degree_vertices, relabel_random
from repro.graph.partition import (
    BlockPartition1D,
    CyclicPartition1D,
    Partition,
    split_csr,
)
from repro.graph.distributed import DistributedCSR
from repro.graph.partition2d import GridPartition2D, split_edges_2d
from repro.graph.exchange import ExchangeResult, exchange_graph
from repro.graph.generators import (
    erdos_renyi,
    rmat,
    powerlaw_configuration,
    ego_circles,
    ring_of_cliques,
    complete_graph,
)
from repro.graph.datasets import DATASETS, load_dataset, dataset_names

__all__ = [
    "CSRGraph",
    "remove_low_degree_vertices",
    "relabel_random",
    "Partition",
    "BlockPartition1D",
    "CyclicPartition1D",
    "split_csr",
    "DistributedCSR",
    "GridPartition2D",
    "split_edges_2d",
    "ExchangeResult",
    "exchange_graph",
    "erdos_renyi",
    "rmat",
    "powerlaw_configuration",
    "ego_circles",
    "ring_of_cliques",
    "complete_graph",
    "DATASETS",
    "load_dataset",
    "dataset_names",
]
