"""Best-fit variable-size allocator over a bounded cache buffer.

CLaMPI reserves a contiguous memory buffer for cached entries and tracks
the *free* regions in an AVL tree.  Because entries have variable sizes
(adjacency lists are as long as the vertex degree), the buffer suffers
**external fragmentation**: free space may exist but be split into pieces
too small for a new entry.  The paper's positional eviction score exists
precisely to fight this; the allocator therefore exposes
:meth:`BufferAllocator.adjacent_free`, the amount of free space bordering a
used block (how much would coalesce if the block were evicted).

No real bytes live here — the simulated cache stores NumPy arrays — but the
offsets are real, so fragmentation behaves exactly as it would in C.
"""

from __future__ import annotations

from repro.clampi.avl import AVLTree
from repro.utils.errors import AllocationError


class BufferAllocator:
    """Offset-based best-fit allocator with free-region coalescing."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.free_bytes = self.capacity
        # Free regions: AVL of (size, start) for best-fit; dicts for coalescing.
        self._free_by_size = AVLTree()
        self._free_start_to_size: dict[int, int] = {}
        self._free_end_to_start: dict[int, int] = {}
        # Used blocks: start -> size.
        self._used: dict[int, int] = {}
        self._add_free(0, self.capacity)

    # -- free-region bookkeeping ---------------------------------------------
    def _add_free(self, start: int, size: int) -> None:
        self._free_by_size.insert((size, start))
        self._free_start_to_size[start] = size
        self._free_end_to_start[start + size] = start

    def _remove_free(self, start: int, size: int) -> None:
        self._free_by_size.remove((size, start))
        del self._free_start_to_size[start]
        del self._free_end_to_start[start + size]

    # -- public API ----------------------------------------------------------
    def alloc(self, size: int) -> int | None:
        """Allocate ``size`` bytes; returns the offset or None if impossible.

        Best fit: the smallest free region that can hold ``size``.  Returning
        None (rather than raising) mirrors CLaMPI, which simply does not cache
        an entry it cannot place and lets the caller decide whether to evict.
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        best = self._free_by_size.ceiling((size, -1))
        if best is None:
            return None
        region_size, start = best
        self._remove_free(start, region_size)
        if region_size > size:
            self._add_free(start + size, region_size - size)
        self._used[start] = size
        self.free_bytes -= size
        return start

    def free(self, offset: int) -> int:
        """Release the block at ``offset``; returns its size.

        Adjacent free regions are coalesced immediately, so the free list is
        always maximal (two free regions never touch).
        """
        try:
            size = self._used.pop(offset)
        except KeyError:
            raise AllocationError(f"no used block at offset {offset}") from None
        start, end = offset, offset + size
        # Coalesce with the free region ending exactly at our start.
        prev_start = self._free_end_to_start.get(start)
        if prev_start is not None:
            prev_size = self._free_start_to_size[prev_start]
            self._remove_free(prev_start, prev_size)
            start = prev_start
        # Coalesce with the free region starting exactly at our end.
        next_size = self._free_start_to_size.get(end)
        if next_size is not None:
            self._remove_free(end, next_size)
            end += next_size
        self._add_free(start, end - start)
        self.free_bytes += size
        return size

    # -- inspection -------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self.capacity - self.free_bytes

    def block_size(self, offset: int) -> int:
        """Size of the used block at ``offset``."""
        try:
            return self._used[offset]
        except KeyError:
            raise AllocationError(f"no used block at offset {offset}") from None

    def largest_free_block(self) -> int:
        """Largest contiguous free region (0 when full)."""
        top = self._free_by_size.max()
        return top[0] if top is not None else 0

    def external_fragmentation(self) -> float:
        """1 - largest_free/free_total; 0 = one contiguous free region."""
        if self.free_bytes == 0:
            return 0.0
        return 1.0 - self.largest_free_block() / self.free_bytes

    def adjacent_free(self, offset: int) -> int:
        """Free bytes bordering the used block at ``offset``.

        This is the paper's positional signal: a block surrounded by free
        space would, if evicted, produce a large coalesced region, so it is a
        preferred victim even at equal temporal locality.
        """
        size = self.block_size(offset)
        total = 0
        prev_start = self._free_end_to_start.get(offset)
        if prev_start is not None:
            total += self._free_start_to_size[prev_start]
        nxt = self._free_start_to_size.get(offset + size)
        if nxt is not None:
            total += nxt
        return total

    def n_free_regions(self) -> int:
        return len(self._free_start_to_size)

    def n_used_blocks(self) -> int:
        return len(self._used)

    def used_blocks(self) -> dict[int, int]:
        """Snapshot of used blocks (offset -> size)."""
        return dict(self._used)

    # -- validation (test hook) ---------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the free/used accounting exactly tiles the buffer."""
        self._free_by_size.check_invariants()
        regions = sorted(
            [(s, sz, "free") for s, sz in self._free_start_to_size.items()]
            + [(s, sz, "used") for s, sz in self._used.items()]
        )
        cursor = 0
        prev_kind = None
        for start, size, kind in regions:
            assert start == cursor, f"gap/overlap at offset {cursor} vs {start}"
            assert size > 0, f"empty region at {start}"
            if kind == "free":
                assert prev_kind != "free", f"uncoalesced free regions at {start}"
            cursor = start + size
            prev_kind = kind
        assert cursor == self.capacity, f"buffer not tiled: {cursor} != {self.capacity}"
        assert self.free_bytes == sum(self._free_start_to_size.values())
