"""Serving failover: kill a replica mid-burst, re-route, re-seed, rejoin.

The scenario the shard benchmark gates (satellite of the shardstore PR):
a read burst is draining across a replica set when one replica dies.
Its session keys re-route to survivors via the consistent-hash ring; it
later re-seeds from the primary and rejoins.  Because replicas are
digest-converged, the disturbed run's per-query answers must be
bit-identical to an undisturbed run's.
"""

import pytest

from repro.serve import ServeConfig
from repro.serve.request import QueryRequest
from repro.serve.workload import WorkloadSpec, generate_workload
from repro.shardstore import ReplicaSet


@pytest.fixture(scope="module")
def catalog():
    from repro.serve import default_catalog

    return default_catalog(scale=0.25)


@pytest.fixture(scope="module")
def burst(catalog):
    return generate_workload(WorkloadSpec(
        n_queries=30, arrival_rate=3000.0, n_tenants=8,
        graphs=tuple(catalog), kernels=("lcc",), update_mix=0.0, seed=17))


CFG = ServeConfig(nranks=4, threads=2, pool_capacity=2)


def make_set(catalog):
    return ReplicaSet(catalog, replicas=3, nshards=2, nranks=4)


class TestFailover:
    def test_kill_reroute_reseed_rejoin_keeps_answers(self, catalog, burst):
        plain = make_set(catalog).serve_reads(burst, CFG)
        victim = max(plain.replica_counts,
                     key=lambda rid: (plain.replica_counts[rid], rid))
        qids = sorted(r.qid for r in plain.records)
        rs = make_set(catalog)
        disturbed = rs.serve_reads(
            burst, CFG, kill_replica=victim,
            kill_at=qids[len(qids) // 3], rejoin_at=qids[2 * len(qids) // 3])
        assert disturbed.killed == victim
        assert disturbed.rejoined is True
        assert rs.reseeds == 1
        # The gate: answers are bit-identical to the undisturbed run.
        assert disturbed.digests() == plain.digests()
        # The victim genuinely served nothing while dead.
        dead = {r.qid for r in disturbed.records
                if qids[len(qids) // 3] <= r.qid < qids[2 * len(qids) // 3]}
        assert all(r.replica != victim for r in disturbed.records
                   if r.qid in dead)
        # Survivors inherited its keys: every query was still served.
        assert len(disturbed.records) == len(burst)
        # Back in the set and converged after the dust settles.
        assert victim in rs.live_ids()
        assert rs.verify() == []

    def test_kill_without_rejoin_still_serves_everything(self, catalog,
                                                         burst):
        plain = make_set(catalog).serve_reads(burst, CFG)
        victim = plain.records[0].replica
        rs = make_set(catalog)
        out = rs.serve_reads(burst, CFG, kill_replica=victim,
                             kill_at=sorted(r.qid for r in burst)[5])
        assert out.killed == victim and out.rejoined is False
        assert len(out.records) == len(burst)
        assert out.digests() == plain.digests()
        assert victim not in rs.live_ids()

    def test_single_query_burst(self, catalog):
        rs = make_set(catalog)
        name = next(iter(catalog))
        out = rs.serve_reads([QueryRequest(
            arrival=0.0, qid=0, tenant=0, graph=name, kernel="lcc")], CFG)
        assert len(out.records) == 1
        assert out.throughput_qps > 0
