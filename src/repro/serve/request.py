"""The units of work a serving engine schedules: queries and updates.

A :class:`QueryRequest` names *what* to run (kernel), *where* (a catalog
graph plus the config overrides that shape its resident cluster) and
*when* it enters the system (simulated arrival time).  Two requests with
equal :attr:`~QueryRequest.session_key` can be served by the same
resident :class:`~repro.session.Session` — that equivalence is what the
cache-affinity scheduler exploits and what the session pool keys on.

An :class:`UpdateRequest` carries an edge-update batch for its session
key instead of a kernel.  Updates are **barriers** for their key: every
earlier-arrived request on the key must be served before the update, and
no later-arrived one may overtake it (see
:func:`repro.serve.scheduler.eligible_requests`).  That per-key fencing
is exactly what keeps per-query answers scheduler-independent once the
workload mutates graphs.

With a sharded store behind the pool, an update may additionally carry
the **shard set** its batch touches (:attr:`UpdateRequest.shards`,
stamped by :func:`repro.shardstore.sharded.annotate_shard_sets`): the
fence then narrows from per-graph to per-(graph, shard-set), letting
updates on disjoint shards of one graph flow past each other while
queries — which read the whole graph — still conflict with every update.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.utils.errors import ConfigError

#: A hashable resident-cluster identity: (graph name, sorted override items).
SessionKey = tuple

def freeze_overrides(overrides: Mapping[str, Any] | None) -> tuple:
    """Normalize an override mapping into a sorted, hashable tuple."""
    if not overrides:
        return ()
    return tuple(sorted(overrides.items()))


def arrival_order(request: "QueryRequest | UpdateRequest") -> tuple:
    """Sort key yielding FIFO service order across request types."""
    return (request.arrival, request.qid)


@dataclass(frozen=True)
class QueryRequest:
    """One tenant query against one resident cluster.

    Ordering is (arrival, qid) — across request *types*, so a mixed
    query/update trace sorts into FIFO service order directly; ``qid``
    breaks simultaneous-arrival ties deterministically.
    """

    arrival: float                      # simulated seconds since epoch 0
    qid: int                            # unique, dense, assigned at generation
    tenant: int = field(compare=False)  # who issued it
    graph: str = field(compare=False)   # catalog graph name
    kernel: str = field(compare=False, default="lcc")
    overrides: tuple = field(compare=False, default=())

    #: Discriminator the engine and schedulers branch on.
    is_update = False

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigError(f"arrival must be >= 0, got {self.arrival}")
        if self.qid < 0:
            raise ConfigError(f"qid must be >= 0, got {self.qid}")

    @property
    def session_key(self) -> SessionKey:
        """The resident cluster this query runs on (pool / affinity key)."""
        return (self.graph, self.overrides)

    def override_dict(self) -> dict[str, Any]:
        """The config overrides as a plain mapping."""
        return dict(self.overrides)

    def __lt__(self, other) -> bool:
        return arrival_order(self) < arrival_order(other)


@dataclass(frozen=True)
class UpdateRequest:
    """One tenant's edge-update batch against one resident cluster.

    ``inserts`` / ``deletes`` are raw ``(k, 2)`` edge arrays, materialized
    at workload-generation time so the batch content is independent of
    service order; they are normalized into an
    :class:`~repro.dynamic.delta.UpdateBatch` (idempotent, non-strict)
    when the engine applies them.
    """

    arrival: float
    qid: int
    tenant: int = field(compare=False)
    graph: str = field(compare=False)
    overrides: tuple = field(compare=False, default=())
    inserts: Any = field(compare=False, default=None, repr=False)
    deletes: Any = field(compare=False, default=None, repr=False)
    #: Shards this batch touches (``frozenset``), or ``None`` for the
    #: conservative whole-graph fence.  Annotation, not identity: a
    #: pure function of the batch content, stamped ahead of serving.
    shards: Any = field(compare=False, default=None, repr=False)

    is_update = True

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigError(f"arrival must be >= 0, got {self.arrival}")
        if self.qid < 0:
            raise ConfigError(f"qid must be >= 0, got {self.qid}")
        # Normalize at the source: an empty shard annotation means "this
        # batch touches no shard", which still commits a logical version
        # and therefore must keep the conservative whole-graph fence.
        # Storing it as None makes every downstream consumer — not just
        # the fence's truthiness guard — see the two cases identically.
        if self.shards is not None and not self.shards:
            object.__setattr__(self, "shards", None)

    @property
    def session_key(self) -> SessionKey:
        """The resident cluster this update mutates (and fences)."""
        return (self.graph, self.overrides)

    def with_shards(self, shards) -> "UpdateRequest":
        """A copy annotated with its touched-shard set.

        An empty set stays ``None``: a batch that touches no shard still
        commits a logical version, so it must keep the whole-graph fence
        for query version observations to stay deterministic.
        """
        return replace(self, shards=frozenset(shards) if shards else None)

    def __lt__(self, other) -> bool:
        return arrival_order(self) < arrival_order(other)
