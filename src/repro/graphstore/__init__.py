"""Versioned graph storage + the resident clusters that serve it.

The architectural spine of the dynamic serving system::

    GraphStore (name -> version chain of CSR snapshots + deltas)
        |                 one commit = one GraphVersion advance
        v
    ResidentCluster      (per session: engine + partitioned data + caches)
      Cluster1D          -- the paper's 1D block/cyclic partition
      GridCluster2D      -- the 2D grid blocks tc2d runs on
        |                 resync() folds a delta in surgically
        v
    CLaMPI caches        (targeted invalidation + rekeying keep warmth)

One graph, many configs, many partitionings: a committed update advances
the store's version once, and every resident view of that graph — any
variant's 1D cluster, the 2D grid, every cache — is resynced from the
same :class:`~repro.dynamic.delta.DeltaResult`, so they can never
diverge.  The chained per-version digest makes a graph's whole history
one comparable value, which is how the serving layer proves its
schedulers equivalent.

Quickstart::

    from repro.graphstore import GraphStore

    store = GraphStore({"social": graph})
    store.stage("social", inserts=[(0, 7)])
    store.stage("social", deletes=[(3, 9)])
    update = store.commit("social")        # one flush, one version
    assert str(update.version) == "social@v1"
    assert store.digest("social") != store.digest("social", 0)
"""

from repro.graphstore.grid2d import (
    GridCluster2D,
    stale_block_keys,
    touched_blocks,
)
from repro.graphstore.resident import Cluster1D, ClusterResync, ResidentCluster
from repro.graphstore.store import (
    GraphStore,
    GraphVersion,
    StoreUpdate,
    VersionRecord,
    graph_digest,
)

__all__ = [
    "Cluster1D",
    "ClusterResync",
    "GraphStore",
    "GraphVersion",
    "GridCluster2D",
    "ResidentCluster",
    "StoreUpdate",
    "VersionRecord",
    "graph_digest",
    "stale_block_keys",
    "touched_blocks",
]
