"""Robustness: the paper's conclusions hold across network models.

The cost-model calibration targets Cray Aries; these tests check that the
qualitative claims (caching helps, async beats TriC, scaling positive) do
not hinge on that specific operating point by re-running the key
comparisons under InfiniBand-like and Ethernet-like models.
"""

import pytest

from repro.baselines.tric import TricConfig, run_tric
from repro.core.config import CacheSpec, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.graph.datasets import load_dataset
from repro.runtime.network import NetworkModel

NETWORKS = {
    "aries": NetworkModel.aries(),
    "infiniband": NetworkModel.infiniband(),
    "ethernet": NetworkModel.ethernet(),
}


@pytest.fixture(scope="module")
def graph():
    return load_dataset("rmat-s21-ef16", scale=0.5, seed=0)


@pytest.mark.parametrize("net_name", sorted(NETWORKS))
def test_caching_helps_on_every_network(graph, net_name):
    net = NETWORKS[net_name]
    cfg = LCCConfig(nranks=8, threads=12, network=net)
    plain = run_distributed_lcc(graph, cfg)
    cached = run_distributed_lcc(graph, cfg.replace(
        cache=CacheSpec.paper_split(2 * graph.nbytes, graph.n)))
    assert cached.time < plain.time, f"caching lost on {net_name}"


@pytest.mark.parametrize("net_name", sorted(NETWORKS))
def test_async_beats_tric_on_every_network(graph, net_name):
    net = NETWORKS[net_name]
    a = run_distributed_lcc(graph, LCCConfig(nranks=16, threads=12,
                                             network=net))
    t = run_tric(graph, TricConfig(nranks=16, network=net))
    assert a.time < t.time, f"TriC won on {net_name}"


@pytest.mark.parametrize("net_name", sorted(NETWORKS))
def test_scaling_positive_on_every_network(graph, net_name):
    net = NETWORKS[net_name]
    t4 = run_distributed_lcc(graph, LCCConfig(nranks=4, threads=12,
                                              network=net)).time
    t32 = run_distributed_lcc(graph, LCCConfig(nranks=32, threads=12,
                                               network=net)).time
    assert t32 < t4, f"no strong scaling on {net_name}"


def test_slower_network_amplifies_cache_value(graph):
    # On a high-latency network, avoided gets are worth more.
    gains = {}
    for name in ("aries", "ethernet"):
        cfg = LCCConfig(nranks=8, threads=12, network=NETWORKS[name])
        plain = run_distributed_lcc(graph, cfg)
        cached = run_distributed_lcc(graph, cfg.replace(
            cache=CacheSpec.paper_split(2 * graph.nbytes, graph.n)))
        gains[name] = 1 - cached.time / plain.time
    assert gains["ethernet"] > gains["aries"]
