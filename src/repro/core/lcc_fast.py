"""Vectorized fast path for non-cached distributed LCC runs.

The per-edge Python loop in :mod:`repro.core.lcc` is only required when op
recording is on; cached runs are replayed in vectorized segments by
:mod:`repro.core.replay` (the CLaMPI state machine batched between
state-changing events).  Without caches the situation is even simpler — a
rank's simulated clock is a *closed-form* function of its edge list:

* per-edge communication: two gets (offsets pair + adjacency list) for
  remote neighbours, one DRAM read for local ones;
* per-edge computation: the OpenMP kernel cost for the (|adj(v)|,
  |adj(j)|) pair;
* double buffering combines them as ``c_0 + sum(max(k_i, c_{i+1})) +
  k_last`` per vertex instead of the plain sum.

This module evaluates those sums with NumPy over whole ranks, typically
30-100x faster in wall-clock time than the loop, while producing
**identical** results: the same LCC array (from the sparse-matrix counting
path) and the same trace totals and clocks (pinned to the loop
implementation by tests to double precision).

Used automatically by :func:`repro.core.lcc.run_distributed_lcc` when
``config.cache is None and not config.record_ops``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.throughput import kernel_times_vectorized
from repro.core.config import DistributedRunResult, LCCConfig
from repro.core.local import lcc_from_triplets, triangles_per_vertex_batched
from repro.core.threading import OpenMPModel
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.graph.partition import Partition
from repro.runtime.engine import Engine, RunOutcome
from repro.runtime.trace import RankTrace


def _get_time_vec(network, nbytes: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`NetworkModel.get_time`."""
    t = network.alpha + nbytes * network.beta
    return t + (nbytes > network.rendezvous_threshold) * network.rendezvous_penalty


def _local_read_vec(memory, nbytes: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`MemoryModel.local_read_time`."""
    return memory.dram_latency + nbytes / memory.dram_bandwidth


def simulate_rank_fast(graph: CSRGraph, dist: DistributedCSR,
                       config: LCCConfig, omp: OpenMPModel, rank: int
                       ) -> RankTrace:
    """Closed-form accounting of one rank's LCC pass; returns its trace.

    The returned trace's ``comm_time``/``comp_time``/counters and the
    implied clock (stored in ``trace.sync_time``-free total, returned via
    the caller) replicate :func:`repro.core.lcc._lcc_rank_fn` exactly.
    """
    part: Partition = dist.partition
    memory = config.memory
    network = config.network
    compute = config.compute
    itemsize = dist.w_adj.itemsize
    offs_itemsize = dist.w_offsets.itemsize

    vs = dist.local_vertices(rank)
    offs_local = dist.w_offsets.local_part(rank).astype(np.int64)
    adj_local = dist.w_adj.local_part(rank)
    trace = RankTrace(rank=rank)
    n_local_vertices = vs.shape[0]
    if n_local_vertices == 0:
        return trace

    degrees_all = graph.degrees()
    la = np.repeat(degrees_all[vs], np.diff(offs_local))  # |adj(v)| per edge
    dst = adj_local.astype(np.int64)
    lb = degrees_all[dst]                                  # |adj(j)| per edge
    remote = part.owners(dst) != rank

    # -- per-edge communication ------------------------------------------------
    adj_bytes = lb * itemsize
    comm = np.empty(dst.shape[0], dtype=np.float64)
    comm[remote] = (_get_time_vec(network, np.full(remote.sum(),
                                                   2 * offs_itemsize))
                    + _get_time_vec(network, adj_bytes[remote]))
    comm[~remote] = _local_read_vec(memory, adj_bytes[~remote])

    # -- per-edge computation -----------------------------------------------------
    kern = kernel_times_vectorized(omp, config.method,
                                   la.astype(np.float64),
                                   lb.astype(np.float64))

    # -- combine per vertex ---------------------------------------------------------
    degs = np.diff(offs_local)
    starts = offs_local[:-1]
    ends = offs_local[1:]
    nonempty = degs > 0
    if config.overlap:
        # c_first + sum over i<deg-1 of max(k_i, c_{i+1}) + k_last.
        if dst.shape[0] > 1:
            merged = np.maximum(kern[:-1], comm[1:])
            # Do not pipeline across vertex boundaries: drop i = end-1.
            boundary = ends[nonempty] - 1
            keep = np.ones(merged.shape[0], dtype=bool)
            keep[boundary[boundary < merged.shape[0]]] = False
            pipeline_total = float(merged[keep].sum())
        else:
            pipeline_total = 0.0
        edge_total = (pipeline_total
                      + float(comm[starts[nonempty]].sum())
                      + float(kern[ends[nonempty] - 1].sum()))
    else:
        edge_total = float(comm.sum() + kern.sum())

    own_read = _local_read_vec(memory, degs * itemsize).sum()
    clock = (edge_total + float(own_read)
             + n_local_vertices * compute.vertex_overhead)

    # -- trace bookkeeping (mirrors the loop implementation) ------------------------
    n_remote = int(remote.sum())
    trace.n_remote_gets = 2 * n_remote
    trace.bytes_remote = int((adj_bytes[remote]
                              + 2 * offs_itemsize).sum()) if n_remote else 0
    trace.n_local_reads = int((~remote).sum())
    trace.bytes_local = int(adj_bytes[~remote].sum())
    trace.comm_time = float(comm[remote].sum())
    trace.comp_time = (float(kern.sum()) + float(comm[~remote].sum())
                       + float(own_read)
                       + n_local_vertices * compute.vertex_overhead)
    # Stash the clock where the caller can read it.
    trace._fast_clock = clock  # type: ignore[attr-defined]
    return trace


def run_distributed_lcc_fast(graph: CSRGraph, config: LCCConfig,
                             dist: DistributedCSR | None = None
                             ) -> DistributedRunResult:
    """Non-cached distributed LCC via the closed-form path.

    Pass a prebuilt ``dist`` (whose partition must match ``config``) to
    skip the CSR split — :class:`repro.session.Session` reuses its resident
    partitioned graph this way.
    """
    from repro.core.lcc import make_partition

    if dist is None:
        engine = Engine(config.nranks, network=config.network,
                        memory=config.memory, compute=config.compute)
        dist = DistributedCSR(graph, make_partition(config, graph.n), engine)
    omp = OpenMPModel(threads=config.threads, compute=config.compute,
                      wait_policy=config.wait_policy)

    traces = []
    clocks = []
    for rank in range(config.nranks):
        trace = simulate_rank_fast(graph, dist, config, omp, rank)
        traces.append(trace)
        clocks.append(float(getattr(trace, "_fast_clock", 0.0)))

    tpv = triangles_per_vertex_batched(graph)
    lcc = lcc_from_triplets(graph, tpv)
    total = int(tpv.sum())
    outcome = RunOutcome(time=max(clocks), clocks=clocks, traces=traces,
                         results=[int(tpv[dist.local_vertices(r)].sum())
                                  for r in range(config.nranks)])
    return DistributedRunResult(
        lcc=lcc,
        triangles_per_vertex=tpv,
        global_triangles=total if graph.directed else total // 6,
        outcome=outcome,
        offsets_cache_stats=None,
        adj_cache_stats=None,
    )
