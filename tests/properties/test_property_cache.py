"""Property-based tests for the CLaMPI cache.

The central safety property: whatever the access stream, geometry and
policy, the cache serves byte-identical data to an uncached window and its
internal structures stay consistent.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clampi.cache import ClampiCache, ClampiConfig
from repro.clampi.scores import AppScorePolicy, DefaultScorePolicy, LRUScorePolicy
from repro.runtime.window import Window

N = 128

accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=N - 9),
              st.integers(min_value=1, max_value=8)),
    min_size=1, max_size=120,
)

geometries = st.tuples(
    st.integers(min_value=64, max_value=2048),   # capacity bytes
    st.integers(min_value=2, max_value=64),      # hash slots
)

policies = st.sampled_from(["default", "lru", "degree"])


def make_cache(capacity, nslots, policy_name):
    win = Window("adj", [np.arange(N, dtype=np.int64),
                         np.arange(1000, 1000 + N, dtype=np.int64)])
    win.lock_all(0)
    if policy_name == "degree":
        cfg = ClampiConfig(
            capacity_bytes=capacity, nslots=nslots,
            score_policy=AppScorePolicy(),
            app_score_fn=lambda t, o, c, d: float(c),
        )
    else:
        policy = DefaultScorePolicy() if policy_name == "default" else LRUScorePolicy()
        cfg = ClampiConfig(capacity_bytes=capacity, nslots=nslots,
                           score_policy=policy)
    return ClampiCache(win, 0, cfg), win


@given(accesses, geometries, policies)
@settings(max_examples=120, deadline=None)
def test_cache_transparent_and_consistent(stream, geometry, policy_name):
    capacity, nslots = geometry
    cache, win = make_cache(capacity, nslots, policy_name)
    for offset, count in stream:
        data, duration, hit = cache.access(1, offset, count)
        expected = win.local_part(1)[offset:offset + count]
        np.testing.assert_array_equal(data, expected)
        assert duration > 0
    cache.check_invariants()
    stats = cache.stats
    assert stats.accesses == len(stream)
    assert stats.hits + stats.misses == len(stream)
    assert stats.compulsory_misses <= stats.misses
    distinct = len({(o, c) for o, c in stream})
    assert stats.compulsory_misses <= distinct
    assert cache.used_bytes <= capacity


@given(accesses)
@settings(max_examples=60, deadline=None)
def test_flush_preserves_correctness(stream):
    cache, win = make_cache(1024, 16, "default")
    for i, (offset, count) in enumerate(stream):
        if i % 7 == 3:
            cache.flush()
        data, _, _ = cache.access(1, offset, count)
        np.testing.assert_array_equal(
            data, win.local_part(1)[offset:offset + count])
    cache.check_invariants()


@given(accesses, st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_repeated_streams_eventually_hit(stream, repeats):
    # A cache big enough for everything must hit on every repeat pass.
    cache, _ = make_cache(1 << 16, 4096, "default")
    for offset, count in stream:
        cache.access(1, offset, count)
    misses_after_first = cache.stats.misses
    for _ in range(repeats):
        for offset, count in stream:
            _, _, hit = cache.access(1, offset, count)
            assert hit
    assert cache.stats.misses == misses_after_first
