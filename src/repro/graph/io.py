"""Graph I/O: edge-list text and binary CSR formats.

The paper reads SNAP-style edge lists and distributes chunks during the
(untimed) load phase; we provide the same text format plus a fast ``.npz``
binary for round-tripping generated datasets.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.errors import GraphFormatError


def write_edge_list(graph: CSRGraph, path: str | Path, *,
                    comments: bool = True) -> None:
    """Write a SNAP-style whitespace-separated edge list.

    Undirected graphs emit each edge once (``u < v``).
    """
    path = Path(path)
    edges = graph.edges()
    if not graph.directed:
        edges = edges[edges[:, 0] < edges[:, 1]]
    with path.open("w") as fh:
        if comments:
            kind = "directed" if graph.directed else "undirected"
            fh.write(f"# {graph.name or 'graph'}: {kind}, "
                     f"n={graph.n}, m={graph.m}\n")
            fh.write("# FromNodeId\tToNodeId\n")
        np.savetxt(fh, edges, fmt="%d", delimiter="\t")


def read_edge_list(path: str | Path, *, directed: bool = False,
                   n: int | None = None, name: str = "") -> CSRGraph:
    """Read a SNAP-style edge list (``#`` lines are comments)."""
    path = Path(path)
    rows: list[tuple[int, int]] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected two vertex ids, got {line!r}"
                )
            try:
                rows.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from None
    edges = np.array(rows, dtype=np.int64) if rows else np.empty((0, 2), np.int64)
    return CSRGraph.from_edges(edges, n, directed=directed,
                               name=name or path.stem)


def save_csr(graph: CSRGraph, path: str | Path) -> None:
    """Save to a compressed ``.npz`` (offsets + adjacency + flags)."""
    np.savez_compressed(
        Path(path),
        offsets=graph.offsets,
        adjacency=graph.adjacency,
        directed=np.array([graph.directed]),
        name=np.array([graph.name]),
    )


def load_csr(path: str | Path) -> CSRGraph:
    """Load a graph written by :func:`save_csr`."""
    with np.load(Path(path), allow_pickle=False) as data:
        try:
            return CSRGraph(
                data["offsets"],
                data["adjacency"],
                directed=bool(data["directed"][0]),
                name=str(data["name"][0]),
            )
        except KeyError as exc:
            raise GraphFormatError(f"{path}: not a CSR archive ({exc})") from None
