"""Bench: regenerate Figure 5 — cache-entry characterization."""

import scipy.stats as stats
from conftest import run_once

from repro.analysis.experiments import exp_fig5
from repro.analysis.reuse import fig5_scatter


def test_fig5(benchmark):
    tables = run_once(benchmark, exp_fig5.run)
    assert tables


def test_degree_predicts_reuse(benchmark, facebook):
    def rho():
        degrees, accesses, _ = fig5_scatter(facebook, 2)
        return float(stats.spearmanr(degrees, accesses).statistic)

    # Observation 3.1/3.2: degree correlates positively with reuse.
    assert benchmark(rho) > 0.3
