"""Bench: regenerate Figure 6 — shared-memory thread scaling.

Acceptance shape: positive but saturating speedup (nowhere near 16x at 16
threads — the paper peaks at 2.7x), and active wait policy a few percent
ahead of passive.
"""

from conftest import run_once

from repro.analysis.experiments import exp_fig6
from repro.analysis.throughput import edges_per_microsecond


def test_fig6(benchmark):
    tables = run_once(benchmark, exp_fig6.run, fast=True)
    assert tables


def test_scaling_saturates(benchmark, rmat_s20_ef16):
    def speedup():
        t1 = edges_per_microsecond(rmat_s20_ef16, "hybrid", threads=1)
        t16 = edges_per_microsecond(rmat_s20_ef16, "hybrid", threads=16)
        return t16 / t1

    s = benchmark(speedup)
    assert 1.2 < s < 8.0


def test_wait_policy_gain(benchmark, rmat_s20_ef16):
    def gain():
        a = edges_per_microsecond(rmat_s20_ef16, "hybrid", threads=16,
                                  wait_policy="active")
        p = edges_per_microsecond(rmat_s20_ef16, "hybrid", threads=16,
                                  wait_policy="passive")
        return a / p - 1

    g = benchmark(gain)
    assert 0.0 < g < 0.15  # paper: 2-4%
