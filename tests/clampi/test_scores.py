"""Tests for the eviction-score policies."""

import numpy as np
import pytest

from repro.clampi.allocator import BufferAllocator
from repro.clampi.cache import CacheEntry
from repro.clampi.scores import AppScorePolicy, DefaultScorePolicy, LRUScorePolicy


def entry(key, nbytes, offset, clock, app_score=None):
    return CacheEntry(key, np.zeros(nbytes // 8, dtype=np.int64), offset,
                      nbytes, clock, app_score)


class TestDefaultPolicy:
    def test_recent_entry_scores_higher(self):
        alloc = BufferAllocator(1000)
        o1 = alloc.alloc(100)
        o2 = alloc.alloc(100)
        pol = DefaultScorePolicy(w_positional=0.0)
        old = entry("a", 100, o1, clock=10)
        new = entry("b", 100, o2, clock=90)
        assert pol.victim_score(new, alloc, 100) > pol.victim_score(old, alloc, 100)

    def test_positional_term_prefers_fragmented_victims(self):
        alloc = BufferAllocator(300)
        o1 = alloc.alloc(100)
        o2 = alloc.alloc(100)
        o3 = alloc.alloc(100)
        alloc.free(o3)  # o2 now borders free space; o1 does not
        pol = DefaultScorePolicy(w_recency=1.0, w_positional=1.0)
        e1 = entry("a", 100, o1, clock=50)
        e2 = entry("b", 100, o2, clock=50)  # same recency
        assert pol.victim_score(e2, alloc, 100) < pol.victim_score(e1, alloc, 100)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            DefaultScorePolicy(w_recency=-1)

    def test_no_app_score_usage(self):
        assert not DefaultScorePolicy().uses_app_score


class TestAppScorePolicy:
    def test_degree_dominates(self):
        alloc = BufferAllocator(1000)
        o1, o2 = alloc.alloc(100), alloc.alloc(100)
        pol = AppScorePolicy()
        hub = entry("hub", 100, o1, clock=1, app_score=500.0)
        leaf = entry("leaf", 100, o2, clock=99, app_score=3.0)
        # Despite much better recency, the leaf is the victim.
        assert pol.victim_score(leaf, alloc, 100) < pol.victim_score(hub, alloc, 100)

    def test_recency_breaks_ties(self):
        alloc = BufferAllocator(1000)
        o1, o2 = alloc.alloc(100), alloc.alloc(100)
        pol = AppScorePolicy()
        a = entry("a", 100, o1, clock=10, app_score=5.0)
        b = entry("b", 100, o2, clock=90, app_score=5.0)
        assert pol.victim_score(a, alloc, 100) < pol.victim_score(b, alloc, 100)

    def test_missing_app_score_treated_as_zero(self):
        alloc = BufferAllocator(1000)
        o1 = alloc.alloc(100)
        pol = AppScorePolicy()
        e = entry("a", 100, o1, clock=50, app_score=None)
        assert pol.victim_score(e, alloc, 100) == pytest.approx(
            pol.recency_tiebreak * 0.5)

    def test_uses_app_score(self):
        assert AppScorePolicy().uses_app_score


class TestLRUPolicy:
    def test_pure_recency_ordering(self):
        alloc = BufferAllocator(1000)
        o1, o2 = alloc.alloc(100), alloc.alloc(100)
        pol = LRUScorePolicy()
        a = entry("a", 100, o1, clock=10)
        b = entry("b", 100, o2, clock=20)
        assert pol.victim_score(a, alloc, 100) < pol.victim_score(b, alloc, 100)
