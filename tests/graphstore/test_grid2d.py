"""GridCluster2D: resident tc2d parity, 2D block resync, block caches."""

import numpy as np
import pytest

from repro.core.config import CacheSpec, LCCConfig
from repro.core.tc2d import (
    build_block,
    build_grid_blocks,
    pack_block,
    run_distributed_tc_2d,
)
from repro.dynamic import apply_delta, random_update_batch, UpdateBatch
from repro.graph.generators import powerlaw_configuration
from repro.graph.partition2d import GridPartition2D
from repro.graphstore import GridCluster2D, stale_block_keys, touched_blocks
from repro.session import Session


@pytest.fixture(scope="module")
def graph():
    return powerlaw_configuration(200, 1200, seed=9, name="g2d")


def square_cfg(**kw):
    return LCCConfig(nranks=9, threads=4, **kw)


def rect_cfg(**kw):
    return LCCConfig(nranks=8, threads=4, **kw)


class TestBlockBuild:
    @pytest.mark.parametrize("nranks", [4, 8, 9])
    def test_build_block_matches_full_split(self, graph, nranks):
        grid = GridPartition2D(graph.n, nranks)
        full = build_grid_blocks(graph, grid)
        for rank in range(nranks):
            single = build_block(graph, grid, rank)
            np.testing.assert_array_equal(
                pack_block(single), pack_block(full[rank]))

    def test_touched_blocks_covers_changed_edges(self, graph):
        grid = GridPartition2D(graph.n, 9)
        batch = random_update_batch(graph, 10, 0.5, seed=5)
        res = apply_delta(graph, batch, strict=False)
        ranks = touched_blocks(grid, res.changed_keys, graph.n)
        expect = set()
        for key in res.changed_keys:
            u, v = int(key) // graph.n, int(key) % graph.n
            expect.add(grid.owner_of_edge(u, v))
        assert set(ranks) == expect

    def test_stale_block_keys_positional(self):
        old = np.array([3, 2, 0, 1, 2], dtype=np.int32)
        assert stale_block_keys(4, old, old.copy()) == []
        assert stale_block_keys(4, old, np.array([3, 2, 0, 1, 3],
                                                 dtype=np.int32)) == [(4, 0, 5)]
        assert stale_block_keys(4, old, old[:-1]) == [(4, 0, 5)]


class TestResidentParity:
    @pytest.mark.parametrize("cfg_fn", [square_cfg, rect_cfg],
                             ids=["square-3x3", "rect-2x4"])
    def test_warm_queries_bit_identical_to_rebuild(self, graph, cfg_fn):
        cfg = cfg_fn()
        legacy = run_distributed_tc_2d(graph, cfg)
        with Session(graph, cfg) as session:
            runs = [session.run("tc2d") for _ in range(3)]
            assert session.grid_builds == 1
        for r in runs:
            assert int(r.global_triangles) == int(legacy.global_triangles)
            assert r.outcome.clocks == legacy.outcome.clocks

    def test_shape_change_rebuilds_grid(self, graph):
        with Session(graph, square_cfg()) as session:
            session.run("tc2d")
            session.run("tc2d", nranks=4)
            assert session.grid_builds == 2

    def test_coexists_with_1d_cluster(self, graph):
        with Session(graph, square_cfg()) as session:
            lcc = session.run("lcc")
            tc2d = session.run("tc2d")
            again = session.run("lcc")
            assert session.partition_builds == 1
            assert session.grid_builds == 1
        np.testing.assert_array_equal(lcc.lcc, again.lcc)
        assert int(tc2d.global_triangles) == int(lcc.global_triangles)


class TestResync:
    @pytest.mark.parametrize("cfg_fn", [square_cfg, rect_cfg],
                             ids=["square-3x3", "rect-2x4"])
    def test_post_update_matches_fresh_rebuild(self, graph, cfg_fn):
        cfg = cfg_fn()
        with Session(graph, cfg) as session:
            session.run("tc2d")
            for step in range(3):   # sustained updates, resync each time
                batch = random_update_batch(session.graph, 12, 0.5,
                                            seed=31 + step)
                out = session.apply_updates(batch)
                assert out.touched_blocks  # 2D cluster really resynced
                post = session.run("tc2d")
                ref = run_distributed_tc_2d(session.graph, cfg)
                assert int(post.global_triangles) == int(ref.global_triangles)
                assert post.outcome.clocks == ref.outcome.clocks

    def test_resync_blocks_match_full_rebuild(self, graph):
        cluster = GridCluster2D()
        cfg = square_cfg()
        cluster.acquire(graph, cfg)
        batch = random_update_batch(graph, 16, 0.5, seed=77)
        res = apply_delta(graph, batch, strict=False)
        cluster.resync(res)
        grid = GridPartition2D(res.graph.n, cfg.nranks)
        fresh = build_grid_blocks(res.graph, grid)
        for rank in range(cfg.nranks):
            np.testing.assert_array_equal(
                cluster._win.local_part(rank), pack_block(fresh[rank]))
        cluster.close()

    def test_unchanged_delta_touches_nothing(self, graph):
        cluster = GridCluster2D()
        cluster.acquire(graph, square_cfg())
        noop = UpdateBatch.build(None, None, n=graph.n)
        res = apply_delta(graph, noop, strict=False)
        out = cluster.resync(res)
        assert out.touched == () and out.rebuilt_bytes == 0
        cluster.close()


class TestBlockCaches:
    def cached_cfg(self, graph):
        return square_cfg(cache=CacheSpec(
            offsets_bytes=max(1, graph.nbytes // 2), adj_bytes=graph.nbytes))

    def test_warm_cached_queries_hit(self, graph):
        cfg = self.cached_cfg(graph)
        with Session(graph, cfg) as session:
            session.run("tc2d", keep_cache=True)
            caches = session._c2d.caches
            assert caches and any(len(c) for c in caches)
            warm = session.run("tc2d", keep_cache=True)
            hits = sum(c.stats.hits for c in session._c2d.caches)
            assert hits > 0
            # Answers unaffected by caching.
            ref = run_distributed_tc_2d(graph, square_cfg())
            assert int(warm.global_triangles) == int(ref.global_triangles)

    def test_update_invalidates_exactly_touched_blocks(self, graph):
        cfg = self.cached_cfg(graph)
        with Session(graph, cfg) as session:
            session.run("tc2d", keep_cache=True)
            session.run("tc2d", keep_cache=True)
            before = sum(len(c) for c in session._c2d.caches)
            batch = random_update_batch(session.graph, 6, 0.5, seed=13)
            out = session.apply_updates(batch)
            twod = [r for r in out.resyncs if r.kind == "2d"]
            assert twod and twod[0].invalidated_adj_entries > 0
            after = sum(len(c) for c in session._c2d.caches)
            assert 0 < after < before  # untouched blocks stayed warm
            post = session.run("tc2d", keep_cache=True)
            ref = run_distributed_tc_2d(session.graph, square_cfg())
            assert int(post.global_triangles) == int(ref.global_triangles)

    def test_transparent_mode_flushes_per_query_epoch(self, graph):
        """Each query is an epoch; paper Section II-F transparent caches
        flush at its closure, so the next query cannot hit."""
        from repro.clampi.cache import ConsistencyMode

        cfg = square_cfg(cache=CacheSpec(
            offsets_bytes=max(1, graph.nbytes // 2), adj_bytes=graph.nbytes,
            mode=ConsistencyMode.TRANSPARENT))
        with Session(graph, cfg) as session:
            session.run("tc2d", keep_cache=True)
            assert all(len(c) == 0 for c in session._c2d.caches)
            warm = session.run("tc2d", keep_cache=True)
            assert sum(c.stats.hits for c in session._c2d.caches) == 0
            assert sum(c.stats.flushes for c in session._c2d.caches) > 0
            ref = run_distributed_tc_2d(graph, square_cfg())
            assert int(warm.global_triangles) == int(ref.global_triangles)

    def test_memo_not_used_when_cached(self, graph):
        cfg = self.cached_cfg(graph)
        with Session(graph, cfg) as session:
            a = session.run("tc2d", keep_cache=True)
            b = session.run("tc2d", keep_cache=True)
            # Warm cached run differs in *timing* (hits), not answers.
            assert int(a.global_triangles) == int(b.global_triangles)
            assert b.outcome.time < a.outcome.time
