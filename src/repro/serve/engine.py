"""The serving loop: execute a workload through a scheduler and a pool.

The engine is a single simulated server draining a query queue.  Time is
accounted on two clocks at once:

* the **simulated clock** advances by each query's simulated job time
  (:attr:`DistributedRunResult.time` — the paper's longest-rank metric),
  so queueing latency and throughput are properties of the modeled
  cluster, not of the Python interpreter;
* **wall time** is measured per query too, because the repo's batched
  replay makes warm queries cheaper *to simulate* as well — the serving
  report keeps both so speedups can be attributed.

A query's life: it arrives (workload timestamp), waits queued until the
scheduler picks it, acquires its resident session from the pool (building
or evicting if needed), runs with ``keep_cache=True``, and retires with
``latency = finish - arrival`` on the simulated clock.  Answers are
digested (SHA-1 over the result arrays) so scheduler runs can be checked
for bit-identical per-query results.

**Updates** flow through the same loop but are accounted separately: an
:class:`~repro.serve.request.UpdateRequest` applies its edge batch to the
key's resident session (``Session.apply_updates`` — slice resync plus
targeted CLaMPI invalidation), pins the post-update graph on the pool so
eviction cannot roll a key back, and retires with the update's simulated
cost.  The queue is pre-filtered through the per-key update fences
(:func:`~repro.serve.scheduler.eligible_requests`) before any scheduler
pick, and update digests cover the resulting graph bytes — so the
identical-answers check now also proves every scheduler serialized each
key's reads and writes the same way.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import CacheSpec, LCCConfig
from repro.dynamic.delta import UpdateBatch
from repro.graph.csr import CSRGraph
from repro.serve.pool import SessionPool
from repro.serve.request import QueryRequest, arrival_order
from repro.serve.scheduler import FIFOScheduler, Scheduler, eligible_requests
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class ServeConfig:
    """Cluster shape + pool sizing every served query shares."""

    nranks: int = 8
    threads: int = 4
    cache_offsets_fraction: float = 0.5   # of each graph's CSR bytes
    cache_adj_fraction: float = 1.0
    pool_capacity: int = 3
    pool_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.cache_offsets_fraction < 0 or self.cache_adj_fraction < 0:
            raise ConfigError("cache fractions must be >= 0")

    def session_config(self, graph: CSRGraph, overrides: dict) -> LCCConfig:
        """The LCCConfig a resident session for ``graph`` is built with."""
        cache = None
        if self.cache_offsets_fraction or self.cache_adj_fraction:
            cache = CacheSpec.relative(graph.nbytes,
                                       self.cache_offsets_fraction,
                                       self.cache_adj_fraction)
        return LCCConfig(nranks=self.nranks, threads=self.threads,
                         cache=cache, **overrides)


@dataclass
class QueryRecord:
    """One served query, on both clocks."""

    qid: int
    tenant: int
    graph: str
    kernel: str
    arrival: float        # simulated
    start: float          # simulated (>= arrival)
    finish: float         # simulated (start + service)
    service_s: float      # simulated job time of the kernel run
    wall_s: float         # real seconds spent executing the query
    warm_cache: bool      # served against carried-over CLaMPI contents
    built_session: bool   # paid a cold partition (pool miss)
    adj_hit_rate: float | None
    digest: str           # SHA-1 over the answer arrays

    @property
    def latency(self) -> float:
        """Simulated end-to-end latency (queueing + service)."""
        return self.finish - self.arrival


@dataclass
class UpdateRecord:
    """One applied update batch, on both clocks."""

    qid: int
    tenant: int
    graph: str
    arrival: float
    start: float
    finish: float
    service_s: float      # simulated cost of resync + invalidation
    wall_s: float
    built_session: bool   # the update had to build its session first
    n_inserted: int
    n_deleted: int
    n_affected: int       # vertices whose results may have changed
    invalidated_entries: int
    retained_entries: int
    digest: str           # SHA-1 over the post-update graph bytes

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class ServeOutcome:
    """Everything one (workload, scheduler) serving run produced."""

    scheduler: str
    records: list[QueryRecord]
    pool_stats: dict
    wall_clock_s: float
    aggregates: dict = field(default_factory=dict)
    update_records: list[UpdateRecord] = field(default_factory=list)

    def digests(self) -> dict[int, str]:
        """qid -> answer/graph digest (scheduler-order independent).

        Covers queries *and* updates: equal dicts prove both that every
        query returned the same bits and that every key went through the
        same graph-version history.
        """
        d = {r.qid: r.digest for r in self.records}
        d.update({r.qid: r.digest for r in self.update_records})
        return d


def answers_identical(a: ServeOutcome, b: ServeOutcome) -> bool:
    """Did two serving runs produce bit-identical per-query answers?"""
    return a.digests() == b.digests()


def _digest(result: Any) -> str:
    h = hashlib.sha1()
    h.update(str(int(result.global_triangles)).encode())
    for arr in (result.lcc, result.triangles_per_vertex):
        h.update(b"|")
        if arr is not None:
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _graph_digest(graph: CSRGraph) -> str:
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(graph.offsets).tobytes())
    h.update(b"|")
    h.update(np.ascontiguousarray(graph.adjacency).tobytes())
    return h.hexdigest()


def summarize(records: list[QueryRecord], pool_stats: dict,
              wall_clock_s: float,
              update_records: list[UpdateRecord] = ()) -> dict[str, Any]:
    """Aggregate one serving run into the report row the benches commit."""
    if not records and not update_records:
        raise ConfigError("cannot summarize an empty serving run")
    update_aggs: dict[str, Any] = {"n_updates": len(update_records)}
    if update_records:
        ulat = np.array([u.latency for u in update_records])
        update_aggs.update({
            "update_latency_mean_s": float(ulat.mean()),
            "update_latency_p95_s": float(np.percentile(ulat, 95)),
            "update_service_total_s": float(
                sum(u.service_s for u in update_records)),
            "edges_inserted": int(sum(u.n_inserted for u in update_records)),
            "edges_deleted": int(sum(u.n_deleted for u in update_records)),
            "invalidated_entries": int(
                sum(u.invalidated_entries for u in update_records)),
            "retained_entries_mean": float(np.mean(
                [u.retained_entries for u in update_records])),
        })
    if not records:
        # A pure-write trace: no query aggregates, but the work done is
        # still reported rather than thrown away.
        return {
            **update_aggs,
            "n_queries": 0,
            "makespan_s": float(max(u.finish for u in update_records)),
            "session_builds": pool_stats["builds"],
            "session_evictions": pool_stats["evictions"],
            "session_reuses": pool_stats["reuses"],
            "wall_clock_s": float(wall_clock_s),
        }
    lat = np.array([r.latency for r in records])
    # Updates share the simulated server clock, so a trace ending in an
    # update really ends there — makespan covers both record kinds.
    makespan = max(r.finish for r in (*records, *update_records))
    return {
        **update_aggs,
        "n_queries": len(records),
        "makespan_s": float(makespan),
        "throughput_qps": float(len(records) / makespan),
        "total_service_s": float(sum(r.service_s for r in records)),
        "latency_mean_s": float(lat.mean()),
        "latency_p50_s": float(np.percentile(lat, 50)),
        "latency_p95_s": float(np.percentile(lat, 95)),
        "latency_max_s": float(lat.max()),
        "warm_fraction": float(np.mean([r.warm_cache for r in records])),
        "mean_adj_hit_rate": float(np.mean(
            [r.adj_hit_rate for r in records if r.adj_hit_rate is not None]
            or [0.0])),
        "session_builds": pool_stats["builds"],
        "session_evictions": pool_stats["evictions"],
        "session_reuses": pool_stats["reuses"],
        "wall_clock_s": float(wall_clock_s),
    }


class ServingEngine:
    """Drain workloads against a catalog with one scheduler and one pool."""

    def __init__(self, catalog: dict[str, CSRGraph],
                 config: ServeConfig | None = None,
                 scheduler: Scheduler | None = None):
        self.catalog = catalog
        self.config = config or ServeConfig()
        self.scheduler = scheduler or FIFOScheduler()

    def serve(self, requests: list[QueryRequest]) -> ServeOutcome:
        """Serve every request; returns records + aggregates.

        The pool is fresh per call (a serving run is self-contained), the
        scheduler is reset, and the loop is fully deterministic for a
        deterministic workload — wall-clock fields aside.
        """
        if not requests:
            raise ConfigError("cannot serve an empty workload")
        config, scheduler = self.config, self.scheduler
        scheduler.reset()
        records: list[QueryRecord] = []
        update_records: list[UpdateRecord] = []
        pending = sorted(requests, key=arrival_order)
        queue: list = []
        clock = 0.0
        last_key = None
        t_run = time.perf_counter()
        with SessionPool(self.catalog, config.session_config,
                         capacity=config.pool_capacity,
                         policy=config.pool_policy) as pool:
            while pending or queue:
                if not queue:               # idle server: jump to next arrival
                    clock = max(clock, pending[0].arrival)
                while pending and pending[0].arrival <= clock:
                    queue.append(pending.pop(0))
                # Per-key update fences are enforced here, before any
                # policy runs: no scheduler can reorder a key's reads
                # around its writes.
                req = scheduler.pick(eligible_requests(queue), last_key, pool)
                queue.remove(req)
                t0 = time.perf_counter()
                session, built = pool.acquire(req.session_key)
                if req.is_update:
                    batch = UpdateBatch.build(
                        req.inserts, req.deletes, n=session.graph.n,
                        directed=session.graph.directed)
                    upd = session.apply_updates(batch)
                    pool.pin_graph(req.session_key, session.graph)
                    wall = time.perf_counter() - t0
                    service = float(upd.time)
                    start = max(clock, req.arrival)
                    finish = start + service
                    clock = finish
                    last_key = req.session_key
                    update_records.append(UpdateRecord(
                        qid=req.qid, tenant=req.tenant, graph=req.graph,
                        arrival=req.arrival, start=start, finish=finish,
                        service_s=service, wall_s=wall, built_session=built,
                        n_inserted=upd.delta.n_inserted,
                        n_deleted=upd.delta.n_deleted,
                        n_affected=int(upd.affected.shape[0]),
                        invalidated_entries=upd.invalidated_entries,
                        retained_entries=upd.retained_entries,
                        digest=_graph_digest(session.graph)))
                    continue
                result = session.run(req.kernel, keep_cache=True)
                wall = time.perf_counter() - t0
                service = float(result.time)
                start = max(clock, req.arrival)
                finish = start + service
                clock = finish
                last_key = req.session_key
                stats = result.adj_cache_stats
                records.append(QueryRecord(
                    qid=req.qid, tenant=req.tenant, graph=req.graph,
                    kernel=req.kernel, arrival=req.arrival, start=start,
                    finish=finish, service_s=service, wall_s=wall,
                    warm_cache=result.warm_cache, built_session=built,
                    adj_hit_rate=(None if stats is None
                                  else float(stats["hit_rate"])),
                    digest=_digest(result)))
            pool_stats = pool.stats.as_dict()
        wall_clock = time.perf_counter() - t_run
        records.sort(key=lambda r: r.qid)
        update_records.sort(key=lambda r: r.qid)
        outcome = ServeOutcome(scheduler=scheduler.name, records=records,
                               pool_stats=pool_stats, wall_clock_s=wall_clock,
                               update_records=update_records)
        outcome.aggregates = summarize(records, pool_stats, wall_clock,
                                       update_records)
        return outcome
