"""Tests for the AVL tree."""

import numpy as np
import pytest

from repro.clampi.avl import AVLTree


class TestBasicOps:
    def test_empty(self):
        t = AVLTree()
        assert len(t) == 0
        assert not t
        assert t.min() is None
        assert t.max() is None
        assert t.ceiling(0) is None
        assert t.floor(0) is None
        assert list(t) == []

    def test_insert_and_contains(self):
        t = AVLTree()
        for k in [5, 3, 8, 1, 4]:
            t.insert(k)
        assert len(t) == 5
        assert 3 in t and 8 in t
        assert 7 not in t

    def test_duplicate_insert_rejected(self):
        t = AVLTree()
        t.insert(5)
        with pytest.raises(KeyError):
            t.insert(5)

    def test_remove(self):
        t = AVLTree()
        for k in range(10):
            t.insert(k)
        t.remove(5)
        assert 5 not in t
        assert len(t) == 9
        t.check_invariants()

    def test_remove_missing_rejected(self):
        t = AVLTree()
        t.insert(1)
        with pytest.raises(KeyError):
            t.remove(2)

    def test_inorder_iteration_sorted(self):
        t = AVLTree()
        keys = [9, 2, 7, 4, 1, 8, 3]
        for k in keys:
            t.insert(k)
        assert list(t) == sorted(keys)


class TestQueries:
    def setup_method(self):
        self.t = AVLTree()
        for k in [10, 20, 30, 40]:
            self.t.insert(k)

    def test_ceiling(self):
        assert self.t.ceiling(15) == 20
        assert self.t.ceiling(20) == 20
        assert self.t.ceiling(41) is None
        assert self.t.ceiling(-5) == 10

    def test_floor(self):
        assert self.t.floor(15) == 10
        assert self.t.floor(20) == 20
        assert self.t.floor(5) is None
        assert self.t.floor(100) == 40

    def test_min_max(self):
        assert self.t.min() == 10
        assert self.t.max() == 40

    def test_tuple_keys(self):
        t = AVLTree()
        t.insert((10, 3))
        t.insert((10, 1))
        t.insert((5, 9))
        assert t.ceiling((10, -1)) == (10, 1)
        assert t.min() == (5, 9)


class TestBalance:
    def test_sequential_insert_stays_balanced(self):
        t = AVLTree()
        for k in range(1000):
            t.insert(k)
        t.check_invariants()
        # Height must be O(log n): for 1000 AVL nodes <= 1.44*log2(1001) ~ 14.
        assert t._root.height <= 15

    def test_random_churn_keeps_invariants(self):
        rng = np.random.default_rng(5)
        t = AVLTree()
        present = set()
        for _ in range(2000):
            k = int(rng.integers(0, 300))
            if k in present:
                t.remove(k)
                present.discard(k)
            else:
                t.insert(k)
                present.add(k)
        t.check_invariants()
        assert list(t) == sorted(present)

    def test_remove_all(self):
        t = AVLTree()
        keys = list(range(100))
        for k in keys:
            t.insert(k)
        for k in keys[::-1]:
            t.remove(k)
        assert len(t) == 0
        t.check_invariants()
