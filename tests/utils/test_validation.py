"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.errors import ConfigError
from repro.utils.validation import (
    as_int_array,
    require_in_range,
    require_non_negative,
    require_positive,
    require_power_of_two,
    require_type,
)


class TestScalars:
    def test_positive(self):
        assert require_positive("x", 1.5) == 1.5
        with pytest.raises(ConfigError):
            require_positive("x", 0)
        with pytest.raises(ConfigError):
            require_positive("x", -1)

    def test_non_negative(self):
        assert require_non_negative("x", 0) == 0
        with pytest.raises(ConfigError):
            require_non_negative("x", -0.1)

    def test_in_range(self):
        assert require_in_range("x", 0.5, 0, 1) == 0.5
        assert require_in_range("x", 0, 0, 1) == 0
        with pytest.raises(ConfigError):
            require_in_range("x", 1.1, 0, 1)

    def test_power_of_two(self):
        for good in (1, 2, 64, 1024):
            assert require_power_of_two("p", good) == good
        for bad in (0, 3, 12, -4):
            with pytest.raises(ConfigError):
                require_power_of_two("p", bad)

    def test_type(self):
        assert require_type("x", 5, int) == 5
        with pytest.raises(ConfigError):
            require_type("x", 5.0, int)


class TestIntArray:
    def test_int_passthrough(self):
        arr = as_int_array("a", [1, 2, 3])
        assert arr.dtype == np.int64
        np.testing.assert_array_equal(arr, [1, 2, 3])

    def test_whole_floats_ok(self):
        arr = as_int_array("a", np.array([1.0, 2.0]))
        assert arr.dtype == np.int64

    def test_fractional_rejected(self):
        with pytest.raises(ConfigError):
            as_int_array("a", [1.5])

    def test_2d_rejected(self):
        with pytest.raises(ConfigError):
            as_int_array("a", np.zeros((2, 2)))

    def test_strings_rejected(self):
        with pytest.raises(ConfigError):
            as_int_array("a", np.array(["x"]))
