"""Adjacency-list intersection kernels (paper Section II-C).

Both kernels assume **strictly sorted** lists (CSR guarantees it) and
return the size of the intersection:

* :func:`ssi_count` — sorted set intersection, O(|A| + |B|);
* :func:`binary_search_count` — |A| binary searches into B,
  O(|A| log |B|), with the shorter list always supplying the keys;
* :func:`hybrid_count` — picks per pair using the paper's Eq. 3 rule
  (``|B|/|A| <= log2|B| - 1`` -> SSI else binary search).

The Python implementations are vectorized NumPy translations of the
paper's Algorithms 1 and 2 — semantically identical, and fast enough to
run the full benchmark suite.  The *cost* of a kernel invocation in
simulated time is a separate concern, handled by
:class:`repro.runtime.compute.ComputeModel` /
:class:`repro.core.threading.OpenMPModel`.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.compute import prefer_ssi

__all__ = [
    "ssi_count",
    "binary_search_count",
    "hybrid_count",
    "count_common",
    "count_common_above",
    "intersect_values",
    "prefer_ssi",
]


def ssi_count(a: np.ndarray, b: np.ndarray) -> int:
    """|A ∩ B| by merged linear scan (Algorithm 2, vectorized).

    ``np.intersect1d`` with ``assume_unique`` performs exactly the sorted
    -unique intersection the scalar loop computes.
    """
    if a.shape[0] == 0 or b.shape[0] == 0:
        return 0
    return int(np.intersect1d(a, b, assume_unique=True).shape[0])


def binary_search_count(a: np.ndarray, b: np.ndarray) -> int:
    """|A ∩ B| by binary searches of the shorter list into the longer
    (Algorithm 1, vectorized via ``np.searchsorted``)."""
    keys, tree = (a, b) if a.shape[0] <= b.shape[0] else (b, a)
    if keys.shape[0] == 0 or tree.shape[0] == 0:
        return 0
    idx = np.searchsorted(tree, keys)
    valid = idx < tree.shape[0]
    return int(np.count_nonzero(tree[idx[valid]] == keys[valid]))


def hybrid_count(a: np.ndarray, b: np.ndarray) -> int:
    """|A ∩ B| with the Eq. 3 method choice."""
    if prefer_ssi(a.shape[0], b.shape[0]):
        return ssi_count(a, b)
    return binary_search_count(a, b)


_METHODS = {
    "ssi": ssi_count,
    "binary": binary_search_count,
    "hybrid": hybrid_count,
}


def count_common(a: np.ndarray, b: np.ndarray, method: str = "hybrid") -> int:
    """Dispatch |A ∩ B| by method name ('ssi' | 'binary' | 'hybrid')."""
    try:
        fn = _METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown intersection method {method!r}; "
            f"expected one of {sorted(_METHODS)}"
        ) from None
    return fn(a, b)


def count_common_above(a: np.ndarray, b: np.ndarray, threshold: int,
                       method: str = "hybrid") -> int:
    """|{k in A ∩ B : k > threshold}| — the paper's upper-triangle offset.

    Used by global triangle counting to count each triangle exactly once:
    for edge (i, j) with i < j only common neighbours k > j are counted
    (Section II-C's double-counting elimination).
    """
    ai = np.searchsorted(a, threshold + 1)
    bi = np.searchsorted(b, threshold + 1)
    return count_common(a[ai:], b[bi:], method)


def intersect_values(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The actual common elements (tests and examples; kernels only count)."""
    return np.intersect1d(a, b, assume_unique=True)
