"""Tests for the measurement-methodology helpers."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    MedianCI,
    median_ci,
    repeat_over_seeds,
    repeat_until_tight,
)


class TestMedianCI:
    def test_single_sample(self):
        ci = median_ci([3.0])
        assert (ci.median, ci.lo, ci.hi, ci.n) == (3.0, 3.0, 3.0, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_ci([])

    def test_median_inside_interval(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(0, 0.3, 31)
        ci = median_ci(samples)
        assert ci.lo <= ci.median <= ci.hi

    def test_interval_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        pop = rng.normal(10, 1, 1000)
        narrow = median_ci(pop[:400])
        wide = median_ci(pop[:10])
        assert (narrow.hi - narrow.lo) < (wide.hi - wide.lo)

    def test_coverage_on_known_distribution(self):
        # The 95% CI should contain the true median ~95% of the time.
        rng = np.random.default_rng(1)
        hits = 0
        trials = 200
        for _ in range(trials):
            samples = rng.normal(0, 1, 25)
            ci = median_ci(samples)
            hits += ci.lo <= 0.0 <= ci.hi
        assert hits / trials > 0.85

    def test_half_width_fraction(self):
        ci = MedianCI(median=10.0, lo=9.0, hi=10.5, n=20)
        assert ci.half_width_fraction == pytest.approx(0.1)

    def test_zero_median(self):
        assert MedianCI(0.0, 0.0, 0.0, 3).half_width_fraction == 0.0


class TestRepeatUntilTight:
    def test_stops_early_on_tight_data(self):
        calls = []

        def sample(i):
            calls.append(i)
            return 5.0 + 1e-6 * i  # essentially constant

        ci = repeat_until_tight(sample, min_samples=5, max_samples=50)
        assert len(calls) == 5
        assert ci.half_width_fraction < 0.05

    def test_hits_max_on_noisy_data(self):
        rng = np.random.default_rng(2)

        def sample(i):
            return float(rng.lognormal(0, 2.0))

        ci = repeat_until_tight(sample, min_samples=5, max_samples=12)
        assert ci.n <= 12

    def test_respects_min_samples(self):
        calls = []

        def sample(i):
            calls.append(i)
            return 1.0

        repeat_until_tight(sample, min_samples=7, max_samples=20)
        assert len(calls) >= 7


class TestRepeatOverSeeds:
    def test_summarizes_simulated_runs(self):
        from repro.core.config import LCCConfig
        from repro.core.lcc import run_distributed_lcc
        from repro.graph.generators import rmat

        def run(seed: int) -> float:
            g = rmat(6, 4, seed=seed)
            return run_distributed_lcc(g, LCCConfig(nranks=4)).time

        ci = repeat_over_seeds(run, seeds=range(5))
        assert ci.n == 5
        assert ci.lo <= ci.median <= ci.hi
        assert ci.median > 0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            repeat_over_seeds(lambda s: 1.0, seeds=[])

    def test_deterministic_per_seed(self):
        from repro.core.config import LCCConfig
        from repro.core.lcc import run_distributed_lcc
        from repro.graph.generators import rmat

        def run(seed: int) -> float:
            g = rmat(6, 4, seed=seed)
            return run_distributed_lcc(g, LCCConfig(nranks=4)).time

        a = repeat_over_seeds(run, seeds=[1, 2, 3])
        b = repeat_over_seeds(run, seeds=[1, 2, 3])
        assert a == b
