"""Figure 6: shared-memory strong scaling of the hybrid kernel.

1 to 16 threads on R-MAT S20 EF16, R-MAT S20 EF32 and Orkut; the paper's
speedups at 16 threads are 2.0x, 2.7x and 1.2x — saturation caused by the
per-edge parallel-region entry cost, which the model reproduces.  Also
reports the active-vs-passive wait-policy delta (paper: 2-4%).
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.analysis.throughput import edges_per_microsecond
from repro.graph.datasets import load_dataset

#: (dataset, paper speedup at 16 threads).
PAPER_SPEEDUPS = [
    ("rmat-s20-ef16", 2.0),
    ("rmat-s20-ef32", 2.7),
    ("orkut", 1.2),
]

THREAD_COUNTS = [1, 2, 4, 8, 16]


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    rows = PAPER_SPEEDUPS[:1] if fast else PAPER_SPEEDUPS
    threads = [1, 16] if fast else THREAD_COUNTS
    table = Table(
        ["graph"] + [f"{t}T (e/us)" for t in threads]
        + ["speedup", "paper speedup"],
        title="Figure 6: hybrid-kernel strong scaling on shared memory",
    )
    for name, paper_speedup in rows:
        g = load_dataset(name, scale=scale, seed=seed)
        perf = [edges_per_microsecond(g, "hybrid", threads=t) for t in threads]
        table.add_row(name, *[round(p, 3) for p in perf],
                      f"{perf[-1] / perf[0]:.1f}x", f"{paper_speedup}x")

    wait = Table(["graph", "active (e/us)", "passive (e/us)", "gain"],
                 title="OMP_WAIT_POLICY=active effect (paper: 2-4%)")
    for name, _ in rows:
        g = load_dataset(name, scale=scale, seed=seed)
        a = edges_per_microsecond(g, "hybrid", threads=16, wait_policy="active")
        p = edges_per_microsecond(g, "hybrid", threads=16, wait_policy="passive")
        wait.add_row(name, round(a, 3), round(p, 3), f"{(a / p - 1):.1%}")
    return [table, wait]


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
