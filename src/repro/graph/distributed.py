"""A CSR graph distributed over simulated ranks via two RMA windows.

This is the paper's Figure 3 object: every rank exposes its partition's
``offsets`` and ``adjacencies`` arrays in the ``w_offsets`` / ``w_adj``
windows.  Reading a remote vertex's adjacency list costs exactly two gets:

1. ``(start, end) = Get(w_offsets, owner, local_index, 2)`` — where the
   list lives inside the owner's adjacency array;
2. ``list = Get(w_adj, owner, start, end - start)`` — the list itself.

Both gets go through the attached CLaMPI caches when caching is enabled.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import BlockPartition1D, Partition, split_csr
from repro.runtime.context import SimContext
from repro.runtime.engine import Engine
from repro.runtime.window import Window
from repro.utils.errors import PartitionError

#: Window names used throughout the library.
OFFSETS_WINDOW = "offsets"
ADJACENCY_WINDOW = "adjacencies"


class DistributedCSR:
    """Per-rank CSR partitions exposed through RMA windows."""

    def __init__(self, graph: CSRGraph, partition: Partition, engine: Engine):
        if partition.n != graph.n:
            raise PartitionError(
                f"partition over {partition.n} vertices does not match graph "
                f"with {graph.n}"
            )
        if partition.nranks != engine.nranks:
            raise PartitionError(
                f"partition for {partition.nranks} ranks does not match engine "
                f"with {engine.nranks}"
            )
        self.graph = graph
        self.partition = partition
        self.engine = engine
        offsets_parts, adjacency_parts = split_csr(graph, partition)
        self.w_offsets = engine.windows.add(Window(OFFSETS_WINDOW, offsets_parts))
        self.w_adj = engine.windows.add(Window(ADJACENCY_WINDOW, adjacency_parts))
        # Cache the per-rank local vertex id arrays (global ids).
        self._local_vertices = [partition.local_vertices(r)
                                for r in range(engine.nranks)]
        # Scratch for repro.core.replay: per-rank access streams and
        # counting results, valid for this object's lifetime (the graph
        # and partition are immutable once distributed).
        self._replay_memo: dict = {}

    # -- epochs -------------------------------------------------------------
    def open_epochs(self) -> None:
        """``MPI_Win_lock_all`` on both windows for every rank."""
        for rank in range(self.engine.nranks):
            self.w_offsets.lock_all(rank)
            self.w_adj.lock_all(rank)

    def close_epochs(self) -> None:
        """``MPI_Win_unlock_all`` everywhere; fires cache epoch hooks."""
        for rank in range(self.engine.nranks):
            if self.w_offsets.epoch_open(rank):
                self.w_offsets.unlock_all(rank)
            if self.w_adj.epoch_open(rank):
                self.w_adj.unlock_all(rank)
            ctx = self.engine.contexts[rank]
            for win in (self.w_offsets, self.w_adj):
                cache = ctx.cache_for(win)
                if cache is not None:
                    cache.on_epoch_close()

    # -- dynamic updates -----------------------------------------------------
    def replace_rank_slice(self, rank: int, offsets: np.ndarray,
                           adjacency: np.ndarray) -> None:
        """Swap one rank's exposed CSR slice (dynamic-graph resync).

        The caller (``Session.apply_updates``) is responsible for
        invalidating any CLaMPI entries that cached data from the old
        slice and for calling :meth:`rebind_graph` once every touched
        rank is resynced.
        """
        if offsets.shape[0] != self.w_offsets.part_len(rank):
            raise PartitionError(
                f"rank {rank} offsets length changed "
                f"({self.w_offsets.part_len(rank)} -> {offsets.shape[0]}); "
                "updates may not add or remove vertices")
        if int(offsets[-1]) != adjacency.shape[0]:
            raise PartitionError(
                f"rank {rank} slice inconsistent: offsets end at "
                f"{int(offsets[-1])} but adjacency has "
                f"{adjacency.shape[0]} entries")
        self.w_offsets.replace_part(rank, offsets)
        self.w_adj.replace_part(rank, adjacency)

    def rebind_graph(self, graph: CSRGraph) -> None:
        """Point at the post-update graph and drop topology-derived memos."""
        if graph.n != self.partition.n:
            raise PartitionError(
                f"updated graph has {graph.n} vertices, partition covers "
                f"{self.partition.n}")
        self.graph = graph
        self._replay_memo.clear()

    # -- vertex access -------------------------------------------------------
    def local_vertices(self, rank: int) -> np.ndarray:
        """Global ids of the vertices ``rank`` owns."""
        return self._local_vertices[rank]

    def local_adj(self, rank: int, v: int) -> np.ndarray:
        """Zero-copy adjacency list of a locally-owned vertex."""
        li = self.partition.to_local(v)
        offs = self.w_offsets.local_part(rank)
        return self.w_adj.local_part(rank)[offs[li]:offs[li + 1]]

    def read_adjacency(self, ctx: SimContext, v: int) -> np.ndarray:
        """The two-get remote protocol (or a direct read when local).

        Charges the context's clock for both gets; cache interception is
        automatic when caches are attached.
        """
        owner = self.partition.owner(v)
        li = self.partition.to_local(v)
        if owner == ctx.rank:
            return ctx.get(self.w_adj, owner,
                           int(self.w_offsets.local_part(owner)[li]),
                           int(self.local_adj(owner, v).shape[0]))
        pair = ctx.get(self.w_offsets, owner, li, 2)
        start, end = int(pair[0]), int(pair[1])
        return ctx.get(self.w_adj, owner, start, end - start)

    def read_adjacency_timed(self, ctx: SimContext, v: int
                             ) -> tuple[np.ndarray, float]:
        """Like :meth:`read_adjacency` but returns (data, duration) without
        advancing the clock — used by the double-buffering pipeline."""
        owner = self.partition.owner(v)
        li = self.partition.to_local(v)
        if owner == ctx.rank:
            offs = self.w_offsets.local_part(owner)
            start, end = int(offs[li]), int(offs[li + 1])
            return ctx.get_nowait(self.w_adj, owner, start, end - start)
        pair, t1 = ctx.get_nowait(self.w_offsets, owner, li, 2)
        start, end = int(pair[0]), int(pair[1])
        data, t2 = ctx.get_nowait(self.w_adj, owner, start, end - start)
        return data, t1 + t2

    # -- sizing helpers (cache configuration) ----------------------------------
    def adjacency_nbytes(self) -> int:
        """Total bytes in the adjacency window across ranks."""
        return self.w_adj.total_nbytes()

    def nonlocal_adjacency_nbytes(self, rank: int) -> int:
        """Bytes of adjacency data *not* owned by ``rank``.

        Figure 8 sizes ``C_adj`` as 25% of this quantity.
        """
        return self.w_adj.total_nbytes() - self.w_adj.part_nbytes(rank)

    def csr_nbytes(self) -> int:
        """Total distributed CSR footprint (offsets + adjacency windows)."""
        return self.w_offsets.total_nbytes() + self.w_adj.total_nbytes()


def distribute(graph: CSRGraph, engine: Engine,
               partition: Partition | None = None) -> DistributedCSR:
    """Convenience: distribute ``graph`` with 1D block partitioning."""
    part = partition or BlockPartition1D(graph.n, engine.nranks)
    return DistributedCSR(graph, part, engine)
