"""Smoke tests: every experiment runs in fast mode and keeps its shape
promises."""

import pytest

from repro.analysis.experiments import ALL_EXPERIMENTS


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_fast_mode(name):
    module = ALL_EXPERIMENTS[name]
    tables = module.run(fast=True)
    assert tables, f"{name} produced no tables"
    for table in tables:
        rendered = table.render()
        assert rendered
        md = table.render_markdown()
        assert md.count("|") >= 2 or table.title == ""


def test_runner_cli(tmp_path, capsys):
    from repro.analysis.runner import main

    out = tmp_path / "results.txt"
    assert main(["--exp", "table2", "--fast", "-o", str(out)]) == 0
    content = out.read_text()
    assert "Table II" in content


def test_runner_requires_selection():
    from repro.analysis.runner import main

    with pytest.raises(SystemExit):
        main([])


def test_runner_markdown(capsys):
    from repro.analysis.runner import main

    assert main(["--exp", "fig1", "--fast", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "|" in out
