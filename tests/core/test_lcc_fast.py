"""Pin the vectorized fast path to the per-edge loop implementation."""

import numpy as np
import pytest

from repro.core.config import LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.lcc_fast import run_distributed_lcc_fast
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    powerlaw_configuration,
    rmat,
)

GRAPHS = [
    complete_graph(9),
    rmat(7, 8, seed=3),
    erdos_renyi(96, 700, seed=3),
    powerlaw_configuration(128, 900, seed=3),
    powerlaw_configuration(64, 300, seed=3, directed=True),
]


def loop_config(**kw):
    return LCCConfig(fast_path=False, **kw)


def fast_config(**kw):
    return LCCConfig(fast_path=True, **kw)


class TestFastMatchesLoop:
    @pytest.mark.parametrize("gi", range(len(GRAPHS)))
    @pytest.mark.parametrize("overlap", [True, False])
    def test_clocks_and_traces(self, gi, overlap):
        g = GRAPHS[gi]
        kw = dict(nranks=4, threads=12, overlap=overlap)
        loop = run_distributed_lcc(g, loop_config(**kw))
        fast = run_distributed_lcc_fast(g, fast_config(**kw))
        assert fast.time == pytest.approx(loop.time, rel=1e-9)
        np.testing.assert_allclose(fast.outcome.clocks, loop.outcome.clocks,
                                   rtol=1e-9)
        for ft, lt in zip(fast.outcome.traces, loop.outcome.traces):
            assert ft.n_remote_gets == lt.n_remote_gets
            assert ft.n_local_reads == lt.n_local_reads
            assert ft.bytes_remote == lt.bytes_remote
            assert ft.bytes_local == lt.bytes_local
            assert ft.comm_time == pytest.approx(lt.comm_time, rel=1e-9)
            assert ft.comp_time == pytest.approx(lt.comp_time, rel=1e-9)

    @pytest.mark.parametrize("gi", range(len(GRAPHS)))
    def test_scores_identical(self, gi):
        g = GRAPHS[gi]
        loop = run_distributed_lcc(g, loop_config(nranks=4))
        fast = run_distributed_lcc_fast(g, fast_config(nranks=4))
        np.testing.assert_array_equal(fast.lcc, loop.lcc)
        np.testing.assert_array_equal(fast.triangles_per_vertex,
                                      loop.triangles_per_vertex)
        assert fast.global_triangles == loop.global_triangles

    @pytest.mark.parametrize("partition", ["block", "cyclic"])
    @pytest.mark.parametrize("method", ["ssi", "binary", "hybrid"])
    def test_all_configs(self, partition, method):
        g = rmat(7, 8, seed=3)
        kw = dict(nranks=8, threads=4, partition=partition, method=method)
        loop = run_distributed_lcc(g, loop_config(**kw))
        fast = run_distributed_lcc_fast(g, fast_config(**kw))
        assert fast.time == pytest.approx(loop.time, rel=1e-9)

    def test_single_rank(self):
        g = rmat(6, 4, seed=3)
        loop = run_distributed_lcc(g, loop_config(nranks=1))
        fast = run_distributed_lcc_fast(g, fast_config(nranks=1))
        assert fast.time == pytest.approx(loop.time, rel=1e-9)
        assert fast.outcome.total("n_remote_gets") == 0

    def test_more_ranks_than_vertices(self):
        g = complete_graph(5)
        loop = run_distributed_lcc(g, loop_config(nranks=8))
        fast = run_distributed_lcc_fast(g, fast_config(nranks=8))
        assert fast.time == pytest.approx(loop.time, rel=1e-9)


class TestDispatch:
    def test_default_takes_fast_path(self):
        g = rmat(7, 8, seed=3)
        res = run_distributed_lcc(g, LCCConfig(nranks=4))
        # Fast-path outcomes carry the stashed clock attribute.
        assert hasattr(res.outcome.traces[0], "_fast_clock")

    def test_cache_forces_loop(self):
        from repro.core.config import CacheSpec

        g = rmat(7, 8, seed=3)
        res = run_distributed_lcc(g, LCCConfig(
            nranks=4, cache=CacheSpec.paper_split(1 << 16, g.n)))
        assert not hasattr(res.outcome.traces[0], "_fast_clock")

    def test_record_ops_forces_loop(self):
        g = rmat(7, 8, seed=3)
        res = run_distributed_lcc(g, LCCConfig(nranks=4, record_ops=True))
        assert not hasattr(res.outcome.traces[0], "_fast_clock")
