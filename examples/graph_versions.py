#!/usr/bin/env python
"""One graph, many views: the versioned GraphStore in action.

A catalog graph is served simultaneously by three resident views — two
1D config variants (hybrid vs SSI intersection) and the 2D grid that
``tc2d`` runs on.  Before the store, each view owned a private copy of
the graph and updates reached exactly one of them; now a committed
update advances the graph's single ``GraphVersion`` and the same delta
propagates into every view:

1. **one commit, one version** — ``store.apply`` (or ``stage``/
   ``commit``, which coalesces many op-groups into one flush with
   last-writer-wins semantics) advances ``name@vK`` to ``name@vK+1``;
2. **surgical propagation** — each session folds the delta in via
   ``sync_to``: the 1D clusters rebuild only touched rank slices
   (rekeying shifted-but-unchanged cache entries), the 2D grid rebuilds
   only touched ``(row, col)`` blocks;
3. **history as a value** — the store's chained digest summarizes the
   whole version history; two replicas that agree on it have provably
   seen the same sequence of graphs (the serving layer uses exactly
   this to prove its schedulers equivalent).

    python examples/graph_versions.py
"""

from repro.core import CacheSpec, LCCConfig
from repro.dynamic import random_update_arrays
from repro.graph import load_dataset
from repro.graphstore import GraphStore
from repro.session import Session


def main() -> None:
    graph = load_dataset("facebook-circles", scale=0.6)
    name = graph.name
    store = GraphStore({name: graph})
    cache = CacheSpec.relative(graph.nbytes, 0.5, 1.0)
    variants = {
        "hybrid": LCCConfig(nranks=8, threads=4, cache=cache),
        "ssi": LCCConfig(nranks=8, threads=4, cache=cache, method="ssi"),
        "grid2d": LCCConfig(nranks=9, threads=4),
    }
    print(f"store: {store}  digest {store.digest(name)[:12]}\n")

    sessions = {v: Session(store.graph(name), cfg)
                for v, cfg in variants.items()}
    try:
        # Warm every view: two 1D variants run LCC, the grid runs tc2d.
        for v, session in sessions.items():
            kernel = "tc2d" if v == "grid2d" else "lcc"
            session.run(kernel, keep_cache=True)
            r = session.run(kernel, keep_cache=True)
            print(f"{v:8s} warm {kernel}: {int(r.global_triangles):,} "
                  "triangles")
        print()

        for round_no in range(1, 4):
            # Stage a few op-groups, then commit them as ONE flush — one
            # version advance however many groups rode along.
            for piece in range(2):
                ins, dels = random_update_arrays(
                    store.graph(name), n_edges=8, delete_fraction=0.25,
                    seed=10 * round_no + piece)
                store.stage(name, inserts=ins, deletes=dels)
            update = store.commit(name)
            out = {v: s.sync_to(update.delta) for v, s in sessions.items()}
            one_d = out["hybrid"]
            print(f"{update.version}  (+{update.delta.n_inserted} "
                  f"-{update.delta.n_deleted} edges, "
                  f"{update.coalesced} op-group(s) coalesced)  "
                  f"digest {update.digest[:12]}")
            print(f"         1d: ranks {list(one_d.touched_ranks)} rebuilt, "
                  f"{one_d.invalidated_entries} entries invalidated, "
                  f"{one_d.rekeyed_entries} rekeyed")
            print(f"         2d: blocks "
                  f"{list(out['grid2d'].touched_blocks)} rebuilt")

            answers = {}
            for v, session in sessions.items():
                kernel = "tc2d" if v == "grid2d" else "lcc"
                r = session.run(kernel, keep_cache=True)
                answers[v] = int(r.global_triangles)
                hit = (f", adj hit rate "
                       f"{r.adj_cache_stats['hit_rate']:.3f}"
                       if r.adj_cache_stats else "")
                print(f"         {v:8s} -> {answers[v]:,} triangles{hit}")
            assert len(set(answers.values())) == 1, \
                "every view of one version must agree"
            print()
    finally:
        for session in sessions.values():
            session.close()

    history = list(store.history(name))
    print(f"history: {' -> '.join(str(r.version) for r in history)}")
    print(f"final digest {store.digest(name)[:12]} "
          f"(chained over {len(history)} snapshots)")

    # A replica replaying the same batches lands on the same digest.
    replica = GraphStore({name: graph})
    for record in history[1:]:
        replica.apply(name, record.batch)
    assert replica.digest(name) == store.digest(name)
    print("replica replay: digests agree (histories provably identical)")


if __name__ == "__main__":
    main()
