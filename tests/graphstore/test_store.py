"""GraphStore: version chains, digests, staging/coalescing, pruning."""

import numpy as np
import pytest

from repro.dynamic import UpdateBatch, apply_delta
from repro.graph.generators import erdos_renyi, powerlaw_configuration
from repro.graphstore import GraphStore, GraphVersion, graph_digest
from repro.utils.errors import ConfigError, GraphFormatError


@pytest.fixture()
def graph():
    return powerlaw_configuration(120, 600, seed=3, name="g")


@pytest.fixture()
def store(graph):
    return GraphStore({"g": graph})


def batch_for(graph, inserts=None, deletes=None):
    return UpdateBatch.build(inserts, deletes, n=graph.n,
                             directed=graph.directed)


class TestRegistration:
    def test_catalog_registers_at_v0(self, store, graph):
        assert "g" in store and len(store) == 1
        assert store.version("g") == GraphVersion("g", 0)
        assert store.graph("g") is graph
        assert store.digest("g") == graph_digest(graph)

    def test_unknown_graph_raises(self, store):
        with pytest.raises(ConfigError, match="not in the store"):
            store.graph("nope")
        with pytest.raises(ConfigError, match="not in the store"):
            store.version("nope")

    def test_duplicate_add_needs_overwrite(self, store, graph):
        with pytest.raises(ConfigError, match="already stored"):
            store.add("g", graph)
        v = store.add("g", graph, overwrite=True)
        assert v.version == 0

    def test_empty_name_rejected(self, graph):
        with pytest.raises(ConfigError):
            GraphStore().add("", graph)


class TestVersionChain:
    def test_apply_advances_exactly_one_version(self, store, graph):
        upd = store.apply("g", batch_for(graph, inserts=[(0, 5)]))
        assert upd.version == GraphVersion("g", 1)
        assert store.version("g").version == 1
        assert str(upd.version) == "g@v1"

    def test_snapshots_retained_and_immutable(self, store, graph):
        store.apply("g", batch_for(graph, inserts=[(0, 5)]))
        assert store.graph("g", 0) is graph
        assert store.graph("g", 1) is store.graph("g")
        assert store.graph("g", 1) is not graph
        history = list(store.history("g"))
        assert [r.version.version for r in history] == [0, 1]
        assert history[1].batch is not None and history[1].delta is not None

    def test_chain_digest_covers_history_not_just_bytes(self, store, graph):
        """Two stores with equal final bytes but different histories must
        disagree — the digest proves the *path*, not the endpoint."""
        a = store
        a.apply("g", batch_for(graph, inserts=[(0, 5)]))
        a.apply("g", batch_for(a.graph("g"), deletes=[(0, 5)]))
        b = GraphStore({"g": graph})
        b.apply("g", batch_for(graph, inserts=[(1, 7)]))
        b.apply("g", batch_for(b.graph("g"), deletes=[(1, 7)]))
        # Same final bytes (both net to the original graph) ...
        assert graph_digest(a.graph("g")) == graph_digest(b.graph("g"))
        # ... different histories.
        assert a.digest("g") != b.digest("g")

    def test_equal_histories_equal_digests(self, store, graph):
        other = GraphStore({"g": graph})
        for s in (store, other):
            s.apply("g", batch_for(graph, inserts=[(2, 9), (0, 5)]))
        assert store.digest("g") == other.digest("g")
        assert store.digests() == other.digests()

    def test_noop_batch_still_advances(self, store, graph):
        """History records that the write happened, even if it skipped."""
        upd = store.apply("g", batch_for(graph, deletes=None, inserts=None))
        assert upd.version.version == 1
        assert not upd.changed

    def test_mismatched_batch_rejected(self, store):
        bad = UpdateBatch.build([(0, 1)], n=7, directed=False)
        with pytest.raises(GraphFormatError):
            store.apply("g", bad)

    def test_version_out_of_range(self, store):
        with pytest.raises(ConfigError, match="retains versions 0..0"):
            store.graph("g", 5)


class TestStagingCoalescing:
    def test_commit_flushes_as_one_version(self, store, graph):
        assert store.stage("g", inserts=[(0, 5)]) == 1
        assert store.stage("g", inserts=[(2, 9)]) == 2
        assert store.stage("g", deletes=[(0, 5)]) == 3
        assert store.pending("g") == 3
        upd = store.commit("g")
        assert upd.version.version == 1       # one flush, one version
        assert upd.coalesced == 2             # two op-groups rode along
        assert store.pending("g") == 0

    def test_last_writer_wins_equals_sequential(self, store, graph):
        """The satellite's parity contract: a coalesced flush produces the
        same graph as applying the same op-groups one by one."""
        ops = [({"inserts": [(0, 5)]}), ({"deletes": [(0, 5)]}),
               ({"inserts": [(0, 5), (3, 11)]})]
        seq = GraphStore({"g": graph})
        for op in ops:
            seq.apply("g", batch_for(seq.graph("g"), **op))
        for op in ops:
            store.stage("g", **op)
        upd = store.commit("g")
        assert graph_digest(upd.graph) == graph_digest(seq.graph("g"))

    def test_commit_nothing_staged(self, store):
        assert store.commit("g") is None

    def test_stage_validates_eagerly(self, store):
        with pytest.raises(GraphFormatError):
            store.stage("g", inserts=[(0, 10**6)])


class TestPrune:
    def test_prune_keeps_versions_and_digest(self, store, graph):
        for i in range(3):
            store.apply("g", batch_for(store.graph("g"),
                                       inserts=[(0, 5 + i)]))
        digest = store.digest("g")
        dropped = store.prune("g", keep=1)
        assert dropped == 3
        assert store.version("g").version == 3
        assert store.digest("g") == digest
        with pytest.raises(ConfigError):
            store.graph("g", 0)   # old snapshot gone

    def test_prune_validates(self, store):
        with pytest.raises(ConfigError):
            store.prune("g", keep=0)


class TestDeltaConsistency:
    def test_store_apply_matches_apply_delta(self, graph):
        store = GraphStore({"g": graph})
        batch = batch_for(graph, inserts=[(0, 7), (1, 8)], deletes=None)
        upd = store.apply("g", batch)
        ref = apply_delta(graph, batch, strict=False)
        assert graph_digest(upd.graph) == graph_digest(ref.graph)
        np.testing.assert_array_equal(upd.delta.affected, ref.affected)
        np.testing.assert_array_equal(upd.delta.changed_keys,
                                      ref.changed_keys)

    def test_multiple_graphs_independent(self):
        g1 = erdos_renyi(60, 200, seed=1, name="a")
        g2 = erdos_renyi(60, 200, seed=2, name="b")
        store = GraphStore({"a": g1, "b": g2})
        store.apply("a", batch_for(g1, inserts=[(0, 5)]))
        assert store.version("a").version == 1
        assert store.version("b").version == 0
        assert store.names() == ["a", "b"]
