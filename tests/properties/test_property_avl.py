"""Property-based tests: AVL tree vs a sorted-list oracle."""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clampi.avl import AVLTree

ops = st.lists(
    st.tuples(st.sampled_from(["insert", "remove", "ceiling", "floor"]),
              st.integers(min_value=0, max_value=60)),
    max_size=200,
)


@given(ops)
@settings(max_examples=150)
def test_avl_matches_sorted_list_oracle(operations):
    tree = AVLTree()
    oracle: list[int] = []
    for op, key in operations:
        if op == "insert":
            if key not in oracle:
                tree.insert(key)
                bisect.insort(oracle, key)
        elif op == "remove":
            if key in oracle:
                tree.remove(key)
                oracle.remove(key)
        elif op == "ceiling":
            idx = bisect.bisect_left(oracle, key)
            expected = oracle[idx] if idx < len(oracle) else None
            assert tree.ceiling(key) == expected
        elif op == "floor":
            idx = bisect.bisect_right(oracle, key) - 1
            expected = oracle[idx] if idx >= 0 else None
            assert tree.floor(key) == expected
    assert list(tree) == oracle
    assert len(tree) == len(oracle)
    tree.check_invariants()


@given(st.lists(st.integers(), unique=True, max_size=300))
def test_avl_iteration_sorted(keys):
    tree = AVLTree()
    for k in keys:
        tree.insert(k)
    assert list(tree) == sorted(keys)
    tree.check_invariants()
