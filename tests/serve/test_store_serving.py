"""Store-keyed serving: per-graph fences, propagation, coalescing."""

import numpy as np
import pytest

from repro.graphstore import GraphStore
from repro.dynamic import UpdateBatch
from repro.serve import (
    ServeConfig,
    ServingEngine,
    UpdateRequest,
    coalescible_updates,
    default_catalog,
    eligible_requests,
    make_scheduler,
)
from repro.serve.engine import answers_identical
from repro.serve.request import QueryRequest


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.25)


def query(arrival, qid, graph="g", overrides=(), kernel="lcc"):
    return QueryRequest(arrival=arrival, qid=qid, tenant=0, graph=graph,
                        kernel=kernel, overrides=overrides)


def update(arrival, qid, graph="g", inserts=None, deletes=None):
    return UpdateRequest(arrival=arrival, qid=qid, tenant=0, graph=graph,
                         inserts=inserts, deletes=deletes)


class TestGraphFences:
    def test_update_fences_every_variant_of_its_graph(self):
        """An update barriers the *graph*, not one (graph, variant) key:
        a different variant's later query must wait too."""
        q0 = query(0.0, 0, overrides=(("method", "ssi"),))
        upd = update(1.0, 1)
        q2 = query(2.0, 2, overrides=())   # different session key, same graph
        eligible = eligible_requests([q2, upd, q0])
        assert q0 in eligible
        assert upd not in eligible
        assert q2 not in eligible

    def test_other_graphs_flow_past_the_fence(self):
        upd = update(0.0, 0, graph="a")
        other = query(1.0, 1, graph="b")
        assert set(eligible_requests([upd, other])) == {upd, other}


class TestCoalescibleUpdates:
    def test_consecutive_updates_merge(self):
        u0, u1, u2 = update(0.0, 0), update(1.0, 1), update(2.0, 2)
        q3 = query(3.0, 3)
        assert coalescible_updates([u0, u1, u2, q3], u0) == [u1, u2]

    def test_query_between_updates_stops_the_run(self):
        u0 = update(0.0, 0)
        q1 = query(1.0, 1)
        u2 = update(2.0, 2)
        assert coalescible_updates([u0, q1, u2], u0) == []

    def test_other_graphs_not_merged(self):
        u0 = update(0.0, 0, graph="a")
        u1 = update(1.0, 1, graph="b")
        assert coalescible_updates([u0, u1], u0) == []


def serve(catalog, requests, scheduler="fifo", **cfg):
    config = ServeConfig(nranks=4, threads=2,
                         pool_capacity=cfg.pop("pool_capacity", 2), **cfg)
    return ServingEngine(catalog, config,
                         make_scheduler(scheduler)).serve(requests)


class TestCrossVariantPropagation:
    def test_one_update_reaches_every_variant(self, catalog):
        """Two variants of one graph are warmed, then the graph is
        updated once: both variants' next queries must observe the new
        graph (same post-update answer as a cold engine on v1)."""
        name = next(iter(catalog))
        g = catalog[name]
        va, vb = (), (("method", "ssi"),)
        ins = np.array([[0, g.n - 1], [1, g.n - 2]])
        requests = [
            query(0.0, 0, graph=name, overrides=va),
            query(0.1, 1, graph=name, overrides=vb),
            update(0.2, 2, graph=name, inserts=ins),
            query(0.3, 3, graph=name, overrides=va),
            query(0.4, 4, graph=name, overrides=vb),
        ]
        outcome = serve(catalog, requests)
        [urec] = outcome.update_records
        assert urec.version == 1
        assert urec.sessions_synced == 2      # both variants were resident
        by_qid = {r.qid: r for r in outcome.records}
        assert by_qid[0].version == 0 and by_qid[1].version == 0
        assert by_qid[3].version == 1 and by_qid[4].version == 1
        # Identical post-update answers across variants: same kernel on
        # the same graph version must digest the same.
        assert by_qid[3].digest == by_qid[4].digest
        store = GraphStore({name: g})
        store.apply(name, UpdateBatch.build(ins, None, n=g.n,
                                            directed=g.directed))
        assert outcome.graph_versions[name] == (1, store.digest(name))

    def test_tc2d_sessions_propagate_too(self, catalog):
        name = next(iter(catalog))
        g = catalog[name]
        ins = np.array([[2, g.n - 3]])
        requests = [
            query(0.0, 0, graph=name, kernel="tc2d"),
            update(0.1, 1, graph=name, inserts=ins),
            query(0.2, 2, graph=name, kernel="tc2d"),
        ]
        outcome = serve(catalog, requests)
        from repro.core.tc2d import run_distributed_tc_2d
        from repro.dynamic import apply_delta
        from repro.core.config import LCCConfig

        post = apply_delta(g, UpdateBatch.build(ins, None, n=g.n,
                                                directed=g.directed),
                           strict=False).graph
        # The served post-update digest must reflect the updated graph.
        assert outcome.records[1].version == 1
        ref = run_distributed_tc_2d(post, LCCConfig(nranks=4, threads=2))
        # digest covers global_triangles; recompute it for the reference
        from repro.serve.engine import _digest
        assert outcome.records[1].digest == _digest(ref, 1)


class TestCoalescing:
    def make_requests(self, catalog, gap):
        name = next(iter(catalog))
        g = catalog[name]
        rng = np.random.default_rng(3)
        batches = [rng.integers(0, g.n, size=(3, 2)) for _ in range(3)]
        reqs = [query(0.0, 0, graph=name)]
        for i, ins in enumerate(batches):
            reqs.append(update(0.1 + i * gap, 1 + i, graph=name, inserts=ins))
        reqs.append(query(5.0, 4, graph=name))
        return name, g, batches, reqs

    def test_adjacent_updates_coalesce_into_one_flush(self, catalog):
        # Simultaneous arrivals (qid breaks ties): all three updates are
        # queued when the server reaches them, so they coalesce.
        name, g, batches, reqs = self.make_requests(catalog, gap=0.0)
        outcome = serve(catalog, reqs)
        assert outcome.aggregates["updates_coalesced"] == 2
        heads = [u for u in outcome.update_records if not u.coalesced]
        riders = [u for u in outcome.update_records if u.coalesced]
        assert len(heads) == 1 and len(riders) == 2
        # Riders retire with the head, at zero marginal service.
        assert all(r.finish == heads[0].finish for r in riders)
        assert all(r.service_s == 0.0 for r in riders)
        # Every member still advanced its own version.
        assert sorted(u.version for u in outcome.update_records) == [1, 2, 3]

    def test_coalesced_equals_sequential(self, catalog):
        """The parity contract, end to end: group flush vs one-by-one."""
        name, g, batches, reqs = self.make_requests(catalog, gap=0.0)
        coalesced = serve(catalog, reqs)
        # Spread arrivals so each update is served alone (same batches).
        name2, _, _, spread = self.make_requests(catalog, gap=2.0)
        sequential = serve(catalog, spread)
        assert coalesced.aggregates["updates_coalesced"] == 2
        assert sequential.aggregates["updates_coalesced"] == 0
        # Same version chain, same history digests, same final answers.
        assert ({u.qid: u.digest for u in coalesced.update_records}
                == {u.qid: u.digest for u in sequential.update_records})
        assert coalesced.graph_versions == sequential.graph_versions
        assert (coalesced.records[-1].digest
                == sequential.records[-1].digest)

    def test_store_chain_matches_direct_application(self, catalog):
        name, g, batches, reqs = self.make_requests(catalog, gap=0.0)
        outcome = serve(catalog, reqs)
        store = GraphStore({name: g})
        for ins in batches:
            store.apply(name, UpdateBatch.build(ins, None, n=g.n,
                                                directed=g.directed))
        assert outcome.graph_versions[name] == (3, store.digest(name))


class TestSchedulerIndependenceWithVersions:
    def test_mixed_trace_identical_across_schedulers(self, catalog):
        from repro.serve import WorkloadSpec, generate_workload

        spec = WorkloadSpec(n_queries=40, arrival_rate=2000.0, n_tenants=6,
                            graphs=tuple(catalog), seed=5, update_mix=0.3,
                            update_edges=6, kernels=("lcc", "tc2d"))
        reqs = generate_workload(spec, catalog)
        outs = [serve(catalog, reqs, scheduler=s) for s in ("fifo",
                                                            "affinity")]
        assert answers_identical(outs[0], outs[1])
        assert outs[0].graph_versions == outs[1].graph_versions

    def test_delete_heavy_trace_identical(self, catalog):
        from repro.serve import WorkloadSpec, generate_workload

        spec = WorkloadSpec(n_queries=30, arrival_rate=2000.0, n_tenants=4,
                            graphs=tuple(catalog), seed=9, update_mix=0.4,
                            update_edges=8).delete_heavy()
        assert spec.update_delete_fraction == 0.8
        reqs = generate_workload(spec, catalog)
        outs = [serve(catalog, reqs, scheduler=s) for s in ("fifo",
                                                            "affinity")]
        assert answers_identical(outs[0], outs[1])

    def test_delete_heavy_validates_fraction(self, catalog):
        from repro.serve import WorkloadSpec
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError, match=">= 75%"):
            WorkloadSpec(graphs=tuple(catalog)).delete_heavy(0.5)
