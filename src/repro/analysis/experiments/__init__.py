"""One module per table/figure of the paper's evaluation section.

Every module exposes ``run(scale=1.0, seed=0, fast=False) -> list[Table]``
and can be executed directly (``python -m
repro.analysis.experiments.exp_fig9``).  ``fast=True`` trims the sweep for
smoke tests and pytest-benchmark wrappers; the defaults regenerate the
EXPERIMENTS.md numbers.
"""

from repro.analysis.experiments import (  # noqa: F401
    exp_fig1,
    exp_fig4,
    exp_fig5,
    exp_fig6,
    exp_fig7,
    exp_fig8,
    exp_fig9,
    exp_fig10,
    exp_table2,
    exp_table3,
    exp_ablations,
)

ALL_EXPERIMENTS = {
    "table2": exp_table2,
    "table3": exp_table3,
    "fig1": exp_fig1,
    "fig4": exp_fig4,
    "fig5": exp_fig5,
    "fig6": exp_fig6,
    "fig7": exp_fig7,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "fig10": exp_fig10,
    "ablations": exp_ablations,
}
