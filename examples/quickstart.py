#!/usr/bin/env python
"""Quickstart: one resident cluster, many queries (the Session API).

Runs in a few seconds::

    python examples/quickstart.py
"""

import numpy as np

from repro import Session
from repro.core import CacheSpec, LCCConfig, compute_lcc, count_triangles
from repro.graph import load_dataset


def main() -> None:
    # A scaled-down stand-in for SNAP-LiveJournal (power-law social graph).
    graph = load_dataset("livejournal", scale=0.25)
    print(f"graph: {graph.name}  |V|={graph.n:,}  |E|={graph.m:,}  "
          f"CSR={graph.nbytes / 1024:.0f} KiB")

    # --- single node ------------------------------------------------------
    triangles = count_triangles(graph)
    scores = compute_lcc(graph)
    print(f"\nlocal: {triangles:,} triangles, "
          f"mean LCC {scores.mean():.4f}, max LCC {scores.max():.4f}")

    # --- a simulated 8-node cluster, built once, queried many times --------
    with Session(graph, LCCConfig(nranks=8, threads=12)) as session:
        plain = session.run("lcc")
        print(f"\n8 ranks, non-cached: {plain.time * 1e3:.1f} ms simulated "
              f"({plain.summary()['remote_fraction']:.0%} of reads remote)")

        # Same resident CSR, now with the paper's CLaMPI caches.
        cache = CacheSpec.paper_split(2 * graph.nbytes, graph.n,
                                      score="degree")
        cached = session.run("lcc", cache=cache)
        print(f"8 ranks, cached:     {cached.time * 1e3:.1f} ms simulated "
              f"(C_adj hit rate {cached.adj_cache_stats['hit_rate']:.0%}) "
              f"-> {(1 - cached.time / plain.time):.0%} faster")

        # Any registered kernel runs against the same cluster.
        tc = session.run("tc")
        tric = session.run("tric")
        print(f"kernels: tc -> {tc.global_triangles:,} triangles in "
              f"{tc.time * 1e3:.1f} ms; tric baseline {tric.time * 1e3:.1f} ms "
              f"({tric.time / plain.time:.1f}x the async LCC)")
        print(f"one partitioned graph served "
              f"{session.queries_run} queries "
              f"(partition built {session.partition_builds}x)")

        # Results are identical regardless of caching or distribution.
        assert np.allclose(plain.lcc, scores)
        assert np.array_equal(plain.lcc, cached.lcc)
        assert plain.global_triangles == triangles == tc.global_triangles
    print("\ndistributed == cached == local results: OK")


if __name__ == "__main__":
    main()
