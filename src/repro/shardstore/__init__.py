"""Sharding, routing and replication over the versioned graph store.

The distribution layer the single-node :class:`~repro.graphstore.store
.GraphStore` was missing::

    ShardRouter        (consistent hashing: session_key -> store)
        |
        v
    ReplicaSet         (1 primary + N read replicas, digest-converged)
        |                 a diverged replica is evicted + re-seeded
        v
    ShardedGraphStore  (one logical graph -> partition-aligned shards)
        |                 k-shard commit = one logical version (barrier)
        v
    GraphStore x nshards  (independent per-shard version chains)

Three guarantees, all *checked values* rather than conventions:

* **bit-identity** — a sharded store answers every kernel exactly like
  the unsharded store; every commit is digest-proved by reassembling
  the shards against the logical application;
* **ring stability** — adding/removing a store moves only ~K/N session
  keys (the property suite pins both bounds);
* **convergence** — replicas apply commits independently, and equal
  chained history digests prove equal version-by-version histories.

Quickstart::

    from repro.shardstore import ReplicaSet, ShardedGraphStore

    store = ShardedGraphStore({"social": graph}, nshards=4, nranks=8)
    update = store.apply("social", batch)      # k shards, one version
    assert store.check_version_vector("social") == []

    rs = ReplicaSet({"social": graph}, replicas=3, nshards=4)
    rs.commit("social", batch)
    assert rs.verify() == []                   # digest-converged

``repro shard`` benches the layer end to end (read scaling vs replica
count, cross-shard commit latency, the failover drill) into the
committed ``BENCH_shard.json``.
"""

from repro.shardstore.plan import ShardPlan
from repro.shardstore.replica import ReadRecord, ReplicaReadOutcome, ReplicaSet
from repro.shardstore.router import HashRing, ShardRouter
from repro.shardstore.sharded import (
    ShardSnapshot,
    ShardedGraphStore,
    ShardedUpdate,
    annotate_shard_sets,
)

__all__ = [
    "HashRing",
    "ReadRecord",
    "ReplicaReadOutcome",
    "ReplicaSet",
    "ShardPlan",
    "ShardRouter",
    "ShardSnapshot",
    "ShardedGraphStore",
    "ShardedUpdate",
    "annotate_shard_sets",
]
