"""Serving engine: accounting invariants, scheduler parity, affinity wins."""

import pytest

from repro.serve.engine import (
    ServeConfig,
    ServingEngine,
    answers_identical,
    summarize,
)
from repro.serve.scheduler import CacheAffinityScheduler, FIFOScheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.utils.errors import ConfigError


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.25)


@pytest.fixture(scope="module")
def requests(catalog):
    # Saturating arrivals over a contended pool: the affinity regime.
    return generate_workload(
        WorkloadSpec(n_queries=40, arrival_rate=3000.0, n_tenants=8,
                     graphs=tuple(catalog), seed=5))


@pytest.fixture(scope="module")
def config():
    return ServeConfig(nranks=4, threads=2, pool_capacity=2)


@pytest.fixture(scope="module")
def fifo_outcome(catalog, requests, config):
    return ServingEngine(catalog, config, FIFOScheduler()).serve(requests)


@pytest.fixture(scope="module")
def affinity_outcome(catalog, requests, config):
    return ServingEngine(catalog, config,
                         CacheAffinityScheduler()).serve(requests)


class TestAccounting:
    def test_every_request_served_once(self, fifo_outcome, requests):
        assert [r.qid for r in fifo_outcome.records] == sorted(
            r.qid for r in requests)

    def test_time_invariants(self, fifo_outcome, requests):
        by_qid = {r.qid: r for r in requests}
        for rec in fifo_outcome.records:
            assert rec.start >= rec.arrival == by_qid[rec.qid].arrival
            assert rec.finish == rec.start + rec.service_s
            # One ulp of slack: latency == service when there is no queueing.
            assert rec.latency >= rec.service_s * (1 - 1e-12)
            assert rec.service_s > 0
            assert rec.wall_s > 0

    def test_server_is_sequential(self, fifo_outcome):
        """Service intervals never overlap on the simulated clock."""
        spans = sorted((r.start, r.finish) for r in fifo_outcome.records)
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            assert start >= prev_end - 1e-12

    def test_aggregates_consistent(self, fifo_outcome):
        agg = fifo_outcome.aggregates
        assert agg["n_queries"] == len(fifo_outcome.records)
        assert agg["makespan_s"] == max(r.finish
                                        for r in fifo_outcome.records)
        assert agg["throughput_qps"] == pytest.approx(
            agg["n_queries"] / agg["makespan_s"])
        assert 0.0 <= agg["warm_fraction"] <= 1.0
        assert agg["latency_p50_s"] <= agg["latency_p95_s"] \
            <= agg["latency_max_s"]
        assert agg["session_builds"] >= 1

    def test_deterministic_replay(self, catalog, requests, config,
                                  affinity_outcome):
        again = ServingEngine(catalog, config,
                              CacheAffinityScheduler()).serve(requests)
        assert [(r.qid, r.start, r.finish, r.warm_cache, r.digest)
                for r in again.records] == \
               [(r.qid, r.start, r.finish, r.warm_cache, r.digest)
                for r in affinity_outcome.records]

    def test_empty_workload_rejected(self, catalog, config):
        with pytest.raises(ConfigError):
            ServingEngine(catalog, config).serve([])

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize([], {}, 0.0)


class TestSchedulerParity:
    def test_answers_bit_identical_across_schedulers(self, fifo_outcome,
                                                     affinity_outcome):
        """Scheduling changes order and timing, never per-query results."""
        assert answers_identical(fifo_outcome, affinity_outcome)

    def test_orders_actually_differ(self, fifo_outcome, affinity_outcome):
        fifo_starts = {r.qid: r.start for r in fifo_outcome.records}
        aff_starts = {r.qid: r.start for r in affinity_outcome.records}
        assert fifo_starts != aff_starts


class TestAffinityWins:
    def test_warmer_and_fewer_builds(self, fifo_outcome, affinity_outcome):
        fifo, aff = fifo_outcome.aggregates, affinity_outcome.aggregates
        assert aff["warm_fraction"] > fifo["warm_fraction"]
        assert aff["session_builds"] < fifo["session_builds"]

    def test_higher_throughput_on_skewed_saturated_traffic(
            self, fifo_outcome, affinity_outcome):
        assert (affinity_outcome.aggregates["throughput_qps"]
                > fifo_outcome.aggregates["throughput_qps"])
