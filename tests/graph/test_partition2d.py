"""Tests for the 2D grid partition."""

import numpy as np
import pytest

from repro.graph.generators import rmat
from repro.graph.partition2d import (
    GridPartition2D,
    communication_peers_1d,
    communication_peers_2d,
    split_edges_2d,
)
from repro.utils.errors import PartitionError


class TestGridGeometry:
    def test_square_grid(self):
        g = GridPartition2D(100, 16)
        assert (g.rows, g.cols) == (4, 4)

    def test_rectangular_grid(self):
        g = GridPartition2D(100, 8)
        assert g.rows * g.cols == 8
        assert g.rows in (2, 4)

    def test_prime_rank_count(self):
        g = GridPartition2D(100, 7)
        assert (g.rows, g.cols) == (1, 7)

    def test_single_rank(self):
        g = GridPartition2D(10, 1)
        assert g.owner_of_edge(0, 9) == 0

    def test_invalid_inputs(self):
        with pytest.raises(PartitionError):
            GridPartition2D(10, 0)
        with pytest.raises(PartitionError):
            GridPartition2D(-1, 4)
        with pytest.raises(PartitionError):
            GridPartition2D(10, 4).grid_coords(4)
        with pytest.raises(PartitionError):
            GridPartition2D(10, 4).row_of(10)


class TestEdgeOwnership:
    def test_owner_consistency(self):
        grid = GridPartition2D(64, 16)
        for u, v in [(0, 0), (0, 63), (63, 0), (31, 32)]:
            rank = grid.owner_of_edge(u, v)
            row, col = grid.grid_coords(rank)
            r_lo, r_hi = grid.row_range(row)
            c_lo, c_hi = grid.col_range(col)
            assert r_lo <= u < r_hi
            assert c_lo <= v < c_hi

    def test_vectorized_matches_scalar(self):
        grid = GridPartition2D(64, 8)
        rng = np.random.default_rng(1)
        edges = rng.integers(0, 64, size=(200, 2))
        vec = grid.owners_of_edges(edges)
        for i, (u, v) in enumerate(edges):
            assert vec[i] == grid.owner_of_edge(int(u), int(v))

    def test_split_covers_all_edges(self):
        g = rmat(7, 8, seed=1)
        grid = GridPartition2D(g.n, 9)
        parts = split_edges_2d(g, grid)
        assert sum(p.shape[0] for p in parts) == g.num_adjacency_entries

    def test_peers(self):
        grid = GridPartition2D(64, 16)
        assert len(grid.row_peers(5)) == 4
        assert len(grid.col_peers(5)) == 4
        assert 5 in grid.row_peers(5)
        assert 5 in grid.col_peers(5)


class TestCommunicationScope:
    def test_2d_fewer_peers_than_1d(self):
        g = rmat(9, 16, seed=2)
        p = 64
        assert communication_peers_2d(p) < communication_peers_1d(g, p)

    def test_2d_peer_formula(self):
        assert communication_peers_2d(16) == 6  # 4 + 4 - 2
        assert communication_peers_2d(64) == 14


class TestVectorizedValidation:
    """owners_of_edges / split_edges_2d reject bad arrays wholesale,
    mirroring CSRGraph.from_edges (the scalar per-vertex loop is gone)."""

    def test_out_of_range_edge_array_rejected(self):
        grid = GridPartition2D(64, 8)
        with pytest.raises(PartitionError, match="out of range"):
            grid.owners_of_edges(np.array([[0, 64]]))
        with pytest.raises(PartitionError, match="negative"):
            grid.owners_of_edges(np.array([[-1, 3]]))

    def test_non_integer_edges_rejected(self):
        grid = GridPartition2D(64, 8)
        with pytest.raises(PartitionError, match="integer"):
            grid.owners_of_edges(np.array([[0.5, 3.0]]))

    def test_malformed_shape_rejected(self):
        grid = GridPartition2D(64, 8)
        with pytest.raises(PartitionError, match=r"\(m, 2\)"):
            grid.owners_of_edges(np.arange(6))

    def test_split_edges_2d_validates_supplied_arrays(self):
        g = rmat(6, 6, seed=3)
        grid = GridPartition2D(g.n, 9)
        with pytest.raises(PartitionError, match="out of range"):
            split_edges_2d(g, grid, edges=np.array([[0, g.n + 5]]))
        # The graph's own edges always pass.
        parts = split_edges_2d(g, grid, edges=g.edges())
        assert sum(p.shape[0] for p in parts) == g.num_adjacency_entries

    def test_empty_edge_array_ok(self):
        grid = GridPartition2D(64, 8)
        assert grid.owners_of_edges(
            np.empty((0, 2), dtype=np.int64)).shape == (0,)

    def test_int32_wrap_guard_on_n(self):
        from repro.utils.errors import GraphFormatError

        with pytest.raises((PartitionError, GraphFormatError)):
            GridPartition2D(2**31 + 1, 4)
