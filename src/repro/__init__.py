"""Asynchronous distributed-memory triangle counting and LCC with RMA caching.

A production-quality Python reproduction of Strausz, Vella, Di Girolamo,
Besta and Hoefler (IPDPS 2022, arXiv:2202.13976): fully asynchronous
distributed TC/LCC over one-sided RMA reads of a 1D-partitioned CSR graph,
with CLaMPI-style caching of remote accesses and degree-centrality
eviction scores.

Quickstart::

    from repro.core import compute_lcc, count_triangles, LCCConfig, CacheSpec
    from repro.graph import load_dataset

    g = load_dataset("livejournal")
    scores = compute_lcc(g)                       # local
    result = compute_lcc(g, LCCConfig(            # simulated 64-node cluster
        nranks=64, threads=12,
        cache=CacheSpec.paper_split(2 * g.nbytes, g.n, score="degree")))

Subpackages: :mod:`repro.runtime` (simulated MPI/RMA), :mod:`repro.clampi`
(the cache), :mod:`repro.graph` (CSR/generators/partitioning),
:mod:`repro.core` (the paper's algorithms), :mod:`repro.baselines`
(TriC, DistTC, MapReduce), :mod:`repro.analysis` (the experiment harness
regenerating every table and figure).
"""

__version__ = "1.0.0"
