"""Pin the batched cache replay to the per-edge scalar loop, bit for bit.

Every registered kernel, both CLaMPI consistency modes, cold and warm
caches: ``fast_path=True`` (the batched replay of
:mod:`repro.core.replay`) must produce a ``DistributedRunResult`` that is
**bit-identical** to ``fast_path=False`` (the per-edge loop, kept
importable as the reference oracle) — scores, virtual clocks, per-rank
trace totals and cache statistics, with exact float equality, not
tolerances.
"""

import numpy as np
import pytest

from repro.clampi.cache import ConsistencyMode
from repro.core.config import CacheSpec, LCCConfig
from repro.core.lcc import execute_lcc_loop
from repro.core.tc import execute_tc_loop
from repro.graph.generators import powerlaw_configuration
from repro.session import Session, kernel_names

#: Undirected so every kernel (tc/tc2d/disttc/mapreduce included) runs.
GRAPH = powerlaw_configuration(192, 1200, seed=11)
DIRECTED = powerlaw_configuration(96, 480, seed=12, directed=True)

MODES = [ConsistencyMode.ALWAYS_CACHE, ConsistencyMode.TRANSPARENT]

INT_COUNTERS = ("n_remote_gets", "n_local_reads", "n_cache_hits", "n_puts",
                "n_sends", "n_recvs", "n_barriers", "n_alltoallv",
                "bytes_remote", "bytes_local", "bytes_cached", "bytes_sent",
                "bytes_received")
TIME_COUNTERS = ("comm_time", "comp_time", "sync_time", "cache_time")


def make_spec(mode: ConsistencyMode) -> CacheSpec:
    # Small enough to force evictions, so the replay's scalar fallback and
    # its membership bookkeeping are exercised, not just pure-hit runs.
    return CacheSpec(offsets_bytes=1536, adj_bytes=6144, mode=mode)


def assert_bit_identical(loop, fast) -> None:
    """Exact equality of two kernel results (no tolerances anywhere)."""
    assert fast.global_triangles == loop.global_triangles
    if loop.raw.lcc is None:
        assert fast.raw.lcc is None
    else:
        np.testing.assert_array_equal(fast.raw.lcc, loop.raw.lcc)
        np.testing.assert_array_equal(fast.raw.triangles_per_vertex,
                                      loop.raw.triangles_per_vertex)
    assert fast.outcome.time == loop.outcome.time
    assert fast.outcome.clocks == loop.outcome.clocks
    assert fast.outcome.results == loop.outcome.results
    for ft, lt in zip(fast.outcome.traces, loop.outcome.traces):
        for name in INT_COUNTERS:
            assert getattr(ft, name) == getattr(lt, name), name
        for name in TIME_COUNTERS:
            assert getattr(ft, name) == getattr(lt, name), name
    assert fast.raw.adj_cache_stats == loop.raw.adj_cache_stats
    assert fast.raw.offsets_cache_stats == loop.raw.offsets_cache_stats


class TestAllKernelsAllModes:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    @pytest.mark.parametrize("kernel", kernel_names())
    def test_cold_and_warm_parity(self, kernel, mode):
        spec = make_spec(mode)
        kw = dict(nranks=4, threads=4, cache=spec)
        with Session(GRAPH, LCCConfig(fast_path=True, **kw)) as fast_s, \
                Session(GRAPH, LCCConfig(fast_path=False, **kw)) as loop_s:
            cold_fast = fast_s.run(kernel, keep_cache=True)
            cold_loop = loop_s.run(kernel, keep_cache=True)
            assert_bit_identical(cold_loop, cold_fast)
            warm_fast = fast_s.run(kernel, keep_cache=True)
            warm_loop = loop_s.run(kernel, keep_cache=True)
            assert_bit_identical(warm_loop, warm_fast)

    def test_warm_cache_actually_reused(self):
        # The warm leg above must exercise the reuse effect, not a flush.
        spec = make_spec(ConsistencyMode.ALWAYS_CACHE)
        with Session(GRAPH, LCCConfig(nranks=4, cache=spec)) as s:
            first = s.run("lcc", keep_cache=True)
            again = s.run("lcc", keep_cache=True)
            assert again.warm_cache
            assert again.adj_cache_stats["hit_rate"] > \
                first.adj_cache_stats["hit_rate"]


class TestMoreShapes:
    @pytest.mark.parametrize("overlap", [True, False])
    @pytest.mark.parametrize("partition", ["block", "cyclic"])
    def test_lcc_partitions_and_overlap(self, partition, overlap):
        spec = make_spec(ConsistencyMode.ALWAYS_CACHE)
        kw = dict(nranks=6, threads=2, partition=partition, overlap=overlap,
                  cache=spec)
        with Session(GRAPH, LCCConfig(fast_path=True, **kw)) as fast_s, \
                Session(GRAPH, LCCConfig(fast_path=False, **kw)) as loop_s:
            assert_bit_identical(loop_s.run("lcc"), fast_s.run("lcc"))
            assert_bit_identical(loop_s.run("tc"), fast_s.run("tc"))

    def test_directed_lcc(self):
        spec = make_spec(ConsistencyMode.ALWAYS_CACHE)
        kw = dict(nranks=4, cache=spec)
        with Session(DIRECTED, LCCConfig(fast_path=True, **kw)) as fast_s, \
                Session(DIRECTED, LCCConfig(fast_path=False, **kw)) as loop_s:
            assert_bit_identical(loop_s.run("lcc"), fast_s.run("lcc"))

    def test_degree_score_policy(self):
        spec = CacheSpec(offsets_bytes=1536, adj_bytes=6144, score="degree")
        kw = dict(nranks=4, cache=spec)
        with Session(GRAPH, LCCConfig(fast_path=True, **kw)) as fast_s, \
                Session(GRAPH, LCCConfig(fast_path=False, **kw)) as loop_s:
            assert_bit_identical(loop_s.run("lcc"), fast_s.run("lcc"))

    def test_offsets_only_cache(self):
        spec = CacheSpec(offsets_bytes=4096, adj_bytes=0)
        kw = dict(nranks=4, cache=spec)
        with Session(GRAPH, LCCConfig(fast_path=True, **kw)) as fast_s, \
                Session(GRAPH, LCCConfig(fast_path=False, **kw)) as loop_s:
            assert_bit_identical(loop_s.run("lcc"), fast_s.run("lcc"))


class TestDispatch:
    def test_fast_path_skips_loop(self, monkeypatch):
        import repro.core.lcc as lcc_mod

        def boom(*a, **kw):  # pragma: no cover - should never run
            raise AssertionError("loop oracle must not run on the fast path")

        monkeypatch.setattr(lcc_mod, "execute_lcc_loop", boom)
        spec = make_spec(ConsistencyMode.ALWAYS_CACHE)
        with Session(GRAPH, LCCConfig(nranks=4, cache=spec)) as s:
            s.run("lcc")

    def test_loop_oracle_skips_replay(self, monkeypatch):
        import repro.core.replay as replay_mod

        def boom(*a, **kw):  # pragma: no cover - should never run
            raise AssertionError("replay must not run with fast_path=False")

        monkeypatch.setattr(replay_mod, "execute_lcc_batched", boom)
        monkeypatch.setattr(replay_mod, "execute_tc_batched", boom)
        spec = make_spec(ConsistencyMode.ALWAYS_CACHE)
        cfg = LCCConfig(nranks=4, cache=spec, fast_path=False)
        with Session(GRAPH, cfg) as s:
            s.run("lcc")
            s.run("tc")

    def test_record_ops_forces_loop_and_keeps_ops(self):
        spec = make_spec(ConsistencyMode.ALWAYS_CACHE)
        cfg = LCCConfig(nranks=2, cache=spec, record_ops=True)
        with Session(GRAPH, cfg) as s:
            res = s.run("lcc")
        assert len(res.outcome.traces[0].ops) > 0

    def test_loop_entry_points_importable(self):
        # The reference oracles are part of the public surface.
        assert callable(execute_lcc_loop)
        assert callable(execute_tc_loop)
