"""Comparison baselines.

* :mod:`~repro.baselines.tric` — TriC (Ghosh & Halappanavar, HPEC'20), the
  2020 Graph Challenge champion the paper compares against: vertex-centric
  triangle counting with **blocking all-to-all query exchanges**, whose
  synchronization cost is the paper's main target.
* ``TriC-Buffered`` — the fixed-size-buffer variant the paper built to
  survive TriC's memory blow-up on scale-free graphs (16 MiB cap due to
  the cray-mpich protocol switch); more rounds, more synchronization.
* :mod:`~repro.baselines.disttc` — a DistTC-style (Hoang et al., HPEC'19)
  shadow-edge baseline: replicate every remotely-needed adjacency list up
  front, then count with zero communication; total time is dominated by
  the precompute, the scalability limit the paper attributes to it.
"""

from repro.baselines.tric import TricConfig, run_tric, run_tric_buffered
from repro.baselines.disttc import DistTCConfig, run_disttc
from repro.baselines.mapreduce import MapReduceConfig, run_mapreduce_tc

__all__ = [
    "TricConfig",
    "run_tric",
    "run_tric_buffered",
    "DistTCConfig",
    "run_disttc",
    "MapReduceConfig",
    "run_mapreduce_tc",
]
