"""Scheduler policies: FIFO order, affinity batching, determinism."""

import pytest

from repro.core.config import LCCConfig
from repro.graph.generators import complete_graph
from repro.serve.pool import SessionPool
from repro.serve.request import QueryRequest
from repro.serve.scheduler import (
    SCHEDULERS,
    CacheAffinityScheduler,
    FIFOScheduler,
    make_scheduler,
)
from repro.utils.errors import ConfigError


def req(qid, graph, arrival=None, **overrides):
    return QueryRequest(arrival=float(qid if arrival is None else arrival),
                        qid=qid, tenant=0, graph=graph,
                        overrides=tuple(sorted(overrides.items())))


@pytest.fixture
def pool():
    catalog = {name: complete_graph(5, name=name) for name in ("a", "b", "c")}
    with SessionPool(catalog, lambda g, o: LCCConfig(nranks=2, **o),
                     capacity=2) as p:
        yield p


class TestRegistry:
    def test_all_schedulers_registered(self):
        assert set(SCHEDULERS) == {"fifo", "affinity", "interleave"}

    def test_make_scheduler_by_name(self):
        assert isinstance(make_scheduler("fifo"), FIFOScheduler)
        affinity = make_scheduler("affinity", max_batch=4)
        assert affinity.max_batch == 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            make_scheduler("sjf")

    def test_bad_max_batch_rejected(self):
        with pytest.raises(ConfigError, match="max_batch"):
            CacheAffinityScheduler(max_batch=0)


class TestFIFO:
    def test_picks_earliest_arrival(self, pool):
        queued = [req(3, "a"), req(1, "b"), req(2, "c")]
        assert FIFOScheduler().pick(queued, None, pool).qid == 1

    def test_qid_breaks_arrival_ties(self, pool):
        queued = [req(5, "a", arrival=1.0), req(4, "b", arrival=1.0)]
        assert FIFOScheduler().pick(queued, None, pool).qid == 4

    def test_empty_queue_rejected(self, pool):
        with pytest.raises(ConfigError):
            FIFOScheduler().pick([], None, pool)


class TestAffinity:
    def test_sticks_with_last_key(self, pool):
        sched = CacheAffinityScheduler()
        queued = [req(1, "a"), req(2, "b"), req(3, "b")]
        picked = sched.pick(queued, ("b", ()), pool)
        assert picked.qid == 2          # same key as last, earliest first

    def test_switches_to_deepest_backlog_when_no_last(self, pool):
        sched = CacheAffinityScheduler()
        queued = [req(1, "a"), req(2, "b"), req(3, "b")]
        assert sched.pick(queued, None, pool).graph == "b"

    def test_prefers_resident_sessions_on_switch(self, pool):
        pool.acquire(("c", ()))
        sched = CacheAffinityScheduler()
        # backlog depth is equal; only 'c' is resident in the pool.
        queued = [req(1, "a"), req(2, "c")]
        assert sched.pick(queued, None, pool).graph == "c"

    def test_max_batch_forces_a_switch(self, pool):
        sched = CacheAffinityScheduler(max_batch=2)
        queued = [req(1, "a"), req(2, "a"), req(3, "a"), req(4, "b")]
        order = []
        last = None
        while queued:
            picked = sched.pick(queued, last, pool)
            queued.remove(picked)
            order.append(picked.graph)
            last = picked.session_key
        assert order == ["a", "a", "b", "a"]

    def test_streak_not_capped_without_competition(self, pool):
        sched = CacheAffinityScheduler(max_batch=2)
        queued = [req(1, "a"), req(2, "a"), req(3, "a")]
        last = None
        for expected in (1, 2, 3):
            picked = sched.pick(queued, last, pool)
            queued.remove(picked)
            last = picked.session_key
            assert picked.qid == expected

    def test_reset_clears_streak(self, pool):
        sched = CacheAffinityScheduler(max_batch=1)
        sched.pick([req(1, "a"), req(2, "b")], ("a", ()), pool)
        sched.reset()
        assert sched._streak == 0

    def test_deterministic_pick(self, pool):
        queued = [req(5, "b"), req(2, "a"), req(9, "b"), req(4, "c")]
        sched = CacheAffinityScheduler()
        picks = {sched.pick(list(queued), None, pool).qid for _ in range(5)}
        assert len(picks) == 1
