"""Targeted CLaMPI invalidation (and rekeying) after an edge-update batch.

The cache keys remote gets by ``(target, offset, count)``; after a batch
is applied and a rank's CSR slice rebuilt, three kinds of entries can go
stale:

* **offsets entries** — key ``(target, local_index, 2)``, data the
  ``(start, end)`` pair: stale whenever the vertex's pair changed (its
  own degree changed, or an earlier vertex's did and shifted it);
* **adjacency entries** — key ``(target, start, count)``: stale whenever
  the new window no longer holds the same bytes at that position — the
  vertex's list changed, or the list was shifted by an earlier change;
* everything else — entries for untouched ranks, and entries before the
  first change within a touched rank — stays **valid and warm**.

The retention criterion is *positional*: an adjacency entry survives iff
the new window content at its exact ``[start, start + count)`` range is
identical to what was cached, so a later read of that key — whichever
vertex it now belongs to — is served correctly.  This makes the
invalidation exact, not heuristic: tests cross-check post-update cached
runs against cold full recomputes bit-for-bit.

Adjacency entries whose list merely *moved* — an earlier vertex on the
rank changed degree, shifting the unchanged list to a new start — are not
dropped but **rekeyed**: the plan maps ``(target, old_start, count) ->
(target, new_start, count)`` and :meth:`~repro.clampi.cache.ClampiCache
.rekey` re-registers the entry under its new key, retaining that warmth
too.  Offsets entries cannot be rekeyed (the shifted pair *is* the
cached data, so its bytes did change).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph, gather_ranges
from repro.graph.distributed import DistributedCSR
from repro.graph.partition import split_csr_rank

__all__ = ["ResyncPlan", "resync_distributed", "stale_part_keys"]


def stale_part_keys(target: int, old_offsets: np.ndarray,
                    old_adjacency: np.ndarray, new_offsets: np.ndarray,
                    new_adjacency: np.ndarray
                    ) -> tuple[list[tuple], list[tuple], list[tuple]]:
    """Cache keys invalidated or remapped by swapping one rank's CSR slice.

    Returns ``(offsets_keys, adjacency_keys, adjacency_rekeys)`` for
    window reads targeting ``target``.  Keys are computed against the
    *old* layout (that is what sits in the caches); an entry is kept in
    place only if the new layout serves byte-identical data for its key,
    and remapped (``adjacency_rekeys`` holds ``(old_key, new_key)``
    pairs) when its unchanged list merely moved to a new start.
    """
    old_s, old_e = old_offsets[:-1], old_offsets[1:]
    new_s, new_e = new_offsets[:-1], new_offsets[1:]
    old_len = old_e - old_s
    new_len = new_e - new_s
    pair_ok = (old_s == new_s) & (old_e == new_e)

    row_ok = pair_ok.copy()
    cand = np.flatnonzero(pair_ok & (old_len > 0))
    if cand.size:
        # Same (start, end) in both layouts: compare content in place.
        lens = old_len[cand]
        old_rows, bounds = gather_ranges(old_adjacency, old_s[cand], lens)
        new_rows, _ = gather_ranges(new_adjacency, old_s[cand], lens)
        changed = np.add.reduceat(old_rows != new_rows, bounds[:-1]) > 0
        row_ok[cand[changed]] = False

    # Shifted rows with unchanged length: content-compare old vs new
    # position; equal bytes mean the entry is rekeyable, not stale.
    movable = np.zeros(row_ok.shape[0], dtype=bool)
    mcand = np.flatnonzero(~pair_ok & (old_len == new_len) & (old_len > 0))
    if mcand.size:
        lens = old_len[mcand]
        old_rows, bounds = gather_ranges(old_adjacency, old_s[mcand], lens)
        new_rows, _ = gather_ranges(new_adjacency, new_s[mcand], lens)
        same = np.add.reduceat(old_rows != new_rows, bounds[:-1]) == 0
        movable[mcand[same]] = True

    off_keys = [(target, int(li), 2) for li in np.flatnonzero(~pair_ok)]
    adj_keys = [(target, int(old_s[li]), int(old_len[li]))
                for li in np.flatnonzero(~row_ok & ~movable)]
    rekeys = [((target, int(old_s[li]), int(old_len[li])),
               (target, int(new_s[li]), int(old_len[li])))
              for li in np.flatnonzero(movable)]
    return off_keys, adj_keys, rekeys


@dataclass
class ResyncPlan:
    """What resyncing a resident cluster to a new graph did / must do."""

    touched_ranks: tuple[int, ...]
    offsets_keys: list[tuple] = field(default_factory=list)
    adjacency_keys: list[tuple] = field(default_factory=list)
    adjacency_rekeys: list[tuple] = field(default_factory=list)
    rebuilt_bytes_by_rank: dict[int, int] = field(default_factory=dict)

    @property
    def rebuilt_bytes(self) -> int:
        return sum(self.rebuilt_bytes_by_rank.values())


def resync_distributed(dist: DistributedCSR, new_graph: CSRGraph,
                       endpoints: np.ndarray) -> ResyncPlan:
    """Swap the touched ranks' slices of a resident cluster in place.

    Only ranks owning an endpoint of a changed edge are rebuilt (a
    vertex's CSR row changes only if its own edge set did); every other
    rank's windows — and any cache entries pointing at them — are left
    untouched.  Returns the plan with the per-target stale keys and
    rekeyable moves; the caller pushes those through every rank's caches
    and then calls
    :meth:`~repro.graph.distributed.DistributedCSR.rebind_graph`.
    """
    if endpoints.size == 0:
        return ResyncPlan(touched_ranks=())
    part = dist.partition
    touched = np.unique(part.owners(np.asarray(endpoints, dtype=np.int64)))
    plan = ResyncPlan(touched_ranks=tuple(int(r) for r in touched))
    for rank in plan.touched_ranks:
        old_off = dist.w_offsets.local_part(rank)
        old_adj = dist.w_adj.local_part(rank)
        new_off, new_adj = split_csr_rank(new_graph, part, rank)
        off_keys, adj_keys, rekeys = stale_part_keys(rank, old_off, old_adj,
                                                     new_off, new_adj)
        plan.offsets_keys.extend(off_keys)
        plan.adjacency_keys.extend(adj_keys)
        plan.adjacency_rekeys.extend(rekeys)
        dist.replace_rank_slice(rank, new_off, new_adj)
        plan.rebuilt_bytes_by_rank[rank] = int(new_off.nbytes + new_adj.nbytes)
    return plan
