"""Tests for cache statistics."""

import pytest

from repro.clampi.stats import CacheStats


class TestRates:
    def test_empty_stats(self):
        s = CacheStats()
        assert s.hit_rate == 0.0
        assert s.miss_rate == 0.0
        assert s.compulsory_miss_rate == 0.0
        assert s.accesses == 0

    def test_rates(self):
        s = CacheStats(hits=30, misses=70, compulsory_misses=20)
        assert s.accesses == 100
        assert s.hit_rate == pytest.approx(0.3)
        assert s.miss_rate == pytest.approx(0.7)
        assert s.compulsory_miss_rate == pytest.approx(0.2)
        assert s.avoidable_miss_rate == pytest.approx(0.5)

    def test_evictions_total(self):
        s = CacheStats(capacity_evictions=3, conflict_evictions=4)
        assert s.evictions == 7

    def test_snapshot_keys(self):
        snap = CacheStats(hits=1, misses=1).snapshot()
        for key in ("hits", "misses", "hit_rate", "compulsory_miss_rate",
                    "mgmt_time", "bytes_fetched"):
            assert key in snap

    def test_merge(self):
        a = CacheStats(hits=1, misses=2, compulsory_misses=1, mgmt_time=0.5)
        b = CacheStats(hits=3, misses=4, compulsory_misses=2, mgmt_time=0.25)
        a.merge(b)
        assert a.hits == 4
        assert a.misses == 6
        assert a.compulsory_misses == 3
        assert a.mgmt_time == pytest.approx(0.75)
