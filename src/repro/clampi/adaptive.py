"""Adaptive parameter tuning.

CLaMPI "includes an adaptive parameter tuning heuristic that automatically
resizes the hash table and the memory buffer by observing indicators such
as cache misses, conflicts in the hash table, and evictions due to lack of
space in the memory buffer" (paper Section II-F).  Crucially for the
paper's tuning discussion (Section III-B1), **every adjustment flushes the
cache**, which is why good initial sizes matter.

The tuner inspects the cache every ``check_interval`` accesses:

* probe-window conflicts above ``conflict_threshold`` (per access in the
  window) → grow the hash table by ``hash_growth``;
* capacity evictions above ``eviction_threshold`` while the miss rate is
  still high → grow the buffer by ``buffer_growth`` (never beyond
  ``max_capacity_bytes``).

Each resize charges ``resize_cost`` seconds to the requesting rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utils.units import US

if TYPE_CHECKING:  # pragma: no cover
    from repro.clampi.cache import ClampiCache


@dataclass
class AdaptiveConfig:
    """Knobs for :class:`AdaptiveTuner`."""

    check_interval: int = 4096
    conflict_threshold: float = 0.02
    eviction_threshold: float = 0.25
    min_miss_rate: float = 0.10
    hash_growth: float = 2.0
    buffer_growth: float = 1.5
    max_nslots: int | None = None
    max_capacity_bytes: int | None = None
    max_resizes: int = 8
    resize_cost: float = 50 * US

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ValueError("check_interval must be > 0")
        if self.hash_growth <= 1.0 or self.buffer_growth <= 1.0:
            raise ValueError("growth factors must be > 1")


class AdaptiveTuner:
    """Watches one cache's stats deltas and resizes when they degrade."""

    def __init__(self, config: AdaptiveConfig):
        self.config = config
        self._last_accesses = 0
        self._last_conflicts = 0
        self._last_evictions = 0
        self._last_misses = 0
        self.resizes_done = 0

    def observe(self, cache: "ClampiCache") -> float:
        """Called by the cache after each miss; returns time to charge."""
        cfg = self.config
        stats = cache.stats
        accesses = stats.accesses
        if accesses - self._last_accesses < cfg.check_interval:
            return 0.0
        window = accesses - self._last_accesses
        conflicts = stats.hash_conflicts - self._last_conflicts
        evictions = stats.capacity_evictions - self._last_evictions
        misses = stats.misses - self._last_misses
        self._last_accesses = accesses
        self._last_conflicts = stats.hash_conflicts
        self._last_evictions = stats.capacity_evictions
        self._last_misses = stats.misses

        if self.resizes_done >= cfg.max_resizes:
            return 0.0

        conflict_rate = conflicts / window
        eviction_rate = evictions / window
        miss_rate = misses / window

        if conflict_rate > cfg.conflict_threshold:
            new_slots = int(cache.config.nslots * cfg.hash_growth)
            if cfg.max_nslots is not None:
                new_slots = min(new_slots, cfg.max_nslots)
            if new_slots > cache.config.nslots:
                cache.resize(nslots=new_slots)
                self.resizes_done += 1
                return cfg.resize_cost

        if (eviction_rate > cfg.eviction_threshold
                and miss_rate > cfg.min_miss_rate
                and cfg.max_capacity_bytes is not None):
            new_cap = int(cache.config.capacity_bytes * cfg.buffer_growth)
            new_cap = min(new_cap, cfg.max_capacity_bytes)
            if new_cap > cache.config.capacity_bytes:
                cache.resize(capacity_bytes=new_cap)
                self.resizes_done += 1
                return cfg.resize_cost

        return 0.0
