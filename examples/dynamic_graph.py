#!/usr/bin/env python
"""Cache consistency modes on an evolving graph (paper Section II-F).

The LCC workload is read-only, so the paper runs CLaMPI in *always-cache*
mode.  This example shows why the other two modes exist: a monitoring
loop recomputes LCC after batches of new edges arrive.

* **always-cache** would serve stale adjacency lists after an update;
* **transparent** flushes at every epoch close — always correct, but it
  forfeits all cross-epoch reuse;
* **user-defined** lets the application flush exactly when the graph
  actually changed — correct *and* cheap for read-mostly phases.

    python examples/dynamic_graph.py
"""

import numpy as np

from repro.clampi.cache import ConsistencyMode
from repro.core import CacheSpec, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import lcc_local
from repro.graph import CSRGraph, load_dataset
from repro.utils.rng import make_rng


def add_random_edges(graph: CSRGraph, count: int, rng) -> CSRGraph:
    """Insert ``count`` random new edges (the 'update batch')."""
    new = rng.integers(0, graph.n, size=(count, 2))
    edges = np.concatenate([graph.edges(), new])
    return CSRGraph.from_edges(edges, graph.n, name=graph.name)


def main() -> None:
    rng = make_rng(33)
    graph = load_dataset("skitter", scale=0.4)
    print(f"monitoring LCC on {graph.name}: |V|={graph.n:,} |E|={graph.m:,}\n")

    for mode in (ConsistencyMode.TRANSPARENT, ConsistencyMode.USER_DEFINED):
        g = graph
        total_time = 0.0
        correct = True
        print(f"mode = {mode.value}")
        for epoch in range(3):
            spec = CacheSpec(offsets_bytes=max(1, int(0.4 * g.n) * 16),
                             adj_bytes=2 * g.adjacency.nbytes,
                             mode=mode)
            cfg = LCCConfig(nranks=4, threads=12, cache=spec)
            result = run_distributed_lcc(g, cfg)
            ok = np.allclose(result.lcc, lcc_local(g))
            correct &= ok
            total_time += result.time
            print(f"  epoch {epoch}: {result.time * 1e3:7.1f} ms, "
                  f"adj hit rate {result.adj_cache_stats['hit_rate']:.0%}, "
                  f"scores {'correct' if ok else 'STALE'}")
            g = add_random_edges(g, 200, rng)
        print(f"  total simulated time: {total_time * 1e3:.1f} ms, "
              f"all epochs correct: {correct}\n")

    print("note: each run here builds fresh caches, so both modes stay "
          "correct;\nuser-defined mode's advantage appears when caches "
          "persist across epochs\nand the application flushes only on "
          "actual updates (see repro.clampi).")


if __name__ == "__main__":
    main()
