"""The shardstore bench report and its regression gates."""

import copy

import pytest

from repro.analysis.shard import (
    MIN_READ_SCALING,
    SHARD_REPORT_KEYS,
    check_shard_against_baseline,
    check_shard_report,
    one_off_shard_run,
    run_shard_bench,
    shard_trajectory_row,
    write_shard_report,
)
from repro.graph.generators import powerlaw_configuration


@pytest.fixture(scope="module")
def quick_report():
    return run_shard_bench(quick=True)


class TestQuickRun:
    def test_schema_and_gates(self, quick_report):
        for key in SHARD_REPORT_KEYS:
            assert key in quick_report
        assert check_shard_report(quick_report) == []

    def test_bit_identity_rows(self, quick_report):
        assert quick_report["bit_identity"]
        for row in quick_report["bit_identity"].values():
            assert row["heads_identical"] is True
            assert row["kernels_identical"] is True
            assert row["multi_shard_commits"] > 0
            assert row["version_vector_ok"] is True

    def test_read_scaling_row(self, quick_report):
        scaling = quick_report["read_scaling"]
        assert scaling["digests_identical"] is True
        assert scaling["read_scaling"] >= MIN_READ_SCALING
        assert scaling["replicas"] == 3

    def test_failover_row(self, quick_report):
        fo = quick_report["failover"]
        assert fo["digests_identical"] is True
        assert fo["reseeds"] == 1
        assert fo["rejoined_converged"] is True

    def test_replication_row(self, quick_report):
        for row in quick_report["replication"].values():
            assert row["converged"] is True
            assert row["divergence_detected"] is True
            assert row["healed"] is True
            assert row["converged_after_heal"] is True

    def test_write_round_trip(self, quick_report, tmp_path):
        from repro.analysis.benchreport import load_report

        path = tmp_path / "shard.json"
        write_shard_report(quick_report, str(path))
        loaded = load_report(str(path))
        assert set(loaded) >= set(SHARD_REPORT_KEYS)
        assert loaded["read_scaling"]["read_scaling"] == pytest.approx(
            quick_report["read_scaling"]["read_scaling"])

    def test_passes_against_itself_as_baseline(self, quick_report):
        assert check_shard_against_baseline(quick_report, quick_report) == []

    def test_trajectory_row_fields(self, quick_report):
        row = shard_trajectory_row(quick_report)
        assert row["kind"] == "shard"
        assert row["read_scaling"] > 0
        assert row["failover_digests_identical"] is True
        assert row["date"]


class TestGates:
    def test_bit_identity_is_non_negotiable(self, quick_report):
        bad = copy.deepcopy(quick_report)
        gname = next(iter(bad["bit_identity"]))
        bad["bit_identity"][gname]["kernels_identical"] = False
        assert any("differ" in p for p in check_shard_report(bad))

    def test_multi_shard_commits_required(self, quick_report):
        """A bit-identity round that never crossed a shard boundary
        proves nothing about the commit barrier."""
        bad = copy.deepcopy(quick_report)
        gname = next(iter(bad["bit_identity"]))
        bad["bit_identity"][gname]["multi_shard_commits"] = 0
        assert any("multi-shard" in p for p in check_shard_report(bad))

    def test_read_scaling_floor(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["read_scaling"]["read_scaling"] = 1.1
        assert any("floor" in p for p in check_shard_report(bad))

    def test_version_vector_consistency_required(self, quick_report):
        bad = copy.deepcopy(quick_report)
        gname = next(iter(bad["bit_identity"]))
        bad["bit_identity"][gname]["version_vector_ok"] = False
        assert any("version vector" in p for p in check_shard_report(bad))

    def test_failover_gate(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["failover"]["digests_identical"] = False
        assert any("failover" in p for p in check_shard_report(bad))

    def test_baseline_relative_scaling(self, quick_report):
        inflated = copy.deepcopy(quick_report)
        inflated["read_scaling"]["read_scaling"] *= 1000
        problems = check_shard_against_baseline(quick_report, inflated)
        assert any("fell below" in p for p in problems)

    def test_wrong_baseline_kind_flagged(self, quick_report):
        problems = check_shard_against_baseline(quick_report, {"quick": True})
        assert any("BENCH_shard.json" in p for p in problems)

    def test_bad_tolerance_rejected(self, quick_report):
        with pytest.raises(ValueError):
            check_shard_against_baseline(quick_report, quick_report,
                                         tolerance=0.0)

    def test_write_refuses_failing_report(self, quick_report, tmp_path):
        bad = copy.deepcopy(quick_report)
        bad["read_scaling"]["digests_identical"] = False
        with pytest.raises(ValueError):
            write_shard_report(bad, str(tmp_path / "bad.json"))
        write_shard_report(bad, str(tmp_path / "ungated.json"), gate=False)


class TestOneOff:
    def test_one_off_run_fields(self):
        g = powerlaw_configuration(120, 700, seed=6, name="oneoff")
        payload = one_off_shard_run(g, nshards=4, nranks=8, replicas=2,
                                    n_edges=12, seed=1)
        assert payload["bit_identical"] is True
        assert payload["version_vector_ok"] is True
        assert payload["replicas_converged"] is True
        assert payload["version"] == "oneoff@v1"
        assert len(payload["ring"]) == 2
