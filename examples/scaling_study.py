#!/usr/bin/env python
"""Strong-scaling study: async LCC (cached / non-cached) vs TriC.

A compact Figure 9 for one graph: sweep the simulated node count and print
the four series with speedup annotations.

    python examples/scaling_study.py [dataset] [--nodes 4 8 16 32 64]
"""

import argparse

from repro.baselines.tric import TricConfig, run_tric
from repro.core import CacheSpec, LCCConfig, compute_lcc
from repro.graph import dataset_names, load_dataset


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("dataset", nargs="?", default="rmat-s21-ef16",
                        choices=dataset_names())
    parser.add_argument("--nodes", type=int, nargs="*",
                        default=[4, 8, 16, 32, 64])
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale)
    print(f"graph: {graph.name}  |V|={graph.n:,}  |E|={graph.m:,}\n")
    cache = CacheSpec.paper_split(2 * graph.nbytes, graph.n, score="degree")

    print(f"{'nodes':>6} {'lcc':>10} {'lcc-cached':>11} {'tric':>10} "
          f"{'cache gain':>11} {'tric/lcc':>9}")
    first = {}
    last = {}
    for p in args.nodes:
        lcc = compute_lcc(graph, LCCConfig(nranks=p, threads=12))
        cached = compute_lcc(graph, LCCConfig(nranks=p, threads=12,
                                              cache=cache))
        tric = run_tric(graph, TricConfig(nranks=p))
        row = {"lcc": lcc.time, "cached": cached.time, "tric": tric.time}
        first.setdefault("row", row)
        last["row"] = row
        print(f"{p:>6} {lcc.time:>9.4f}s {cached.time:>10.4f}s "
              f"{tric.time:>9.4f}s {1 - cached.time / lcc.time:>11.1%} "
              f"{tric.time / lcc.time:>8.1f}x")

    f, l = first["row"], last["row"]
    print(f"\nspeedup {args.nodes[0]} -> {args.nodes[-1]} nodes: "
          f"lcc {f['lcc'] / l['lcc']:.1f}x, "
          f"cached {f['cached'] / l['cached']:.1f}x, "
          f"tric {f['tric'] / l['tric']:.1f}x "
          "(paper: async ~9-14x, TriC nearly flat)")


if __name__ == "__main__":
    main()
