"""Bench: regenerate Figure 1 (right) — remote-read reuse histogram."""

from conftest import run_once

from repro.analysis.experiments import exp_fig1
from repro.analysis.reuse import remote_read_counts


def test_fig1(benchmark, facebook):
    tables = run_once(benchmark, exp_fig1.run)
    assert tables

    # Reuse exists: a perfect cache would save a majority of remote reads.
    counts = remote_read_counts(facebook, 2, initiator=0)
    touched = counts[counts > 0]
    assert touched.sum() > 2 * touched.shape[0]
