"""Registered-kernel benchmarks: the repo's recorded performance trajectory.

``repro bench`` runs every registered kernel on standard generator graphs
and writes ``BENCH_kernels.json``: real wall-clock seconds, simulated job
time, triangle counts and cache hit rates, plus a ``cached_replay``
section that measures the batched cache replay (:mod:`repro.core.replay`)
against the per-edge scalar loop it replaced — cold (first query, mostly
compulsory misses) and warm (the paper's reuse regime, a second
``keep_cache=True`` query against the resident session cluster).  A
``linalg`` section does the same for the algebraic 2D kernels: the
masked-SpGEMM ``tc2d_spgemm`` replay vs. the edge-centric ``tc2d``
scalar loop, and the batched cached-grid ``tc2d`` replay vs. the scalar
cached loop, all on the :data:`BENCH_GRID_NRANKS` square grid and gated
bit-identical against their oracles.

The JSON is committed at the repo root so every PR leaves a perf data
point behind; CI runs ``repro bench --quick`` as a smoke test and uploads
the report as an artifact.
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Any, Mapping

from repro.core.config import CacheSpec, LCCConfig
from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw_configuration, rmat
from repro.session import Session, get_kernel, kernel_names, run_kernel

SCHEMA_VERSION = 1

#: Cluster shape every benchmark cell runs with (also recorded in the
#: report header, so trajectory comparisons across PRs stay labeled).
BENCH_NRANKS = 8
BENCH_THREADS = 4

#: Rank count for square-grid-only kernels (``tc2d_spgemm``/``lcc2d``)
#: and the ``linalg`` section: the default ``BENCH_NRANKS = 8`` factors
#: into a rectangular 2x4 grid the SUMMA kernels refuse, so they run on
#: the nearest square grid instead.
BENCH_GRID_NRANKS = 9

#: Keys every report carries (pinned by tests and downstream tooling).
REPORT_KEYS = ("schema_version", "quick", "nranks", "threads",
               "grid_nranks", "graphs", "kernels", "cached_replay",
               "linalg")


def bench_graphs(quick: bool = False) -> dict[str, CSRGraph]:
    """Standard generator graphs the trajectory is recorded on.

    ``quick`` shrinks them for CI smoke runs; the committed report uses
    the full sizes so numbers stay comparable across PRs.
    """
    if quick:
        return {
            "powerlaw-s": powerlaw_configuration(384, 2400, seed=7),
            "rmat-s8": rmat(8, 6, seed=7),
        }
    return {
        "powerlaw-m": powerlaw_configuration(2048, 16000, seed=7),
        "rmat-s10": rmat(10, 8, seed=7),
    }


def _bench_config(graph: CSRGraph, cached: bool, fast_path: bool = True,
                  nranks: int = BENCH_NRANKS) -> LCCConfig:
    cache = CacheSpec.relative(graph.nbytes, 0.5, 1.0) if cached else None
    return LCCConfig(nranks=nranks, threads=BENCH_THREADS, cache=cache,
                     fast_path=fast_path)


def _hit_rate(stats: Mapping[str, float] | None) -> float | None:
    return None if stats is None else float(stats["hit_rate"])


def bench_kernel(graph: CSRGraph, kernel: str) -> dict[str, Any]:
    """One kernel, one graph: wall clock, simulated time, hit rates.

    Resident kernels (lcc/tc) run cached through the batched replay; the
    baselines run their own cluster shapes uncached, as in their papers.
    Square-grid-only kernels run at :data:`BENCH_GRID_NRANKS` (the default
    rank count is rectangular); the row records which shape was used.
    """
    spec = get_kernel(kernel)
    nranks = BENCH_GRID_NRANKS if spec.square_grid_only else BENCH_NRANKS
    with Session(graph, _bench_config(graph, spec.resident,
                                      nranks=nranks)) as session:
        t0 = time.perf_counter()
        result = session.run(kernel)
        wall = time.perf_counter() - t0
    return {
        "wall_clock_s": wall,
        "simulated_time_s": float(result.time),
        "global_triangles": int(result.global_triangles),
        "adj_hit_rate": _hit_rate(result.adj_cache_stats),
        "offsets_hit_rate": _hit_rate(result.offsets_cache_stats),
        "nranks": nranks,
    }


def bench_cached_replay(graph: CSRGraph, kernel: str) -> dict[str, Any]:
    """Batched replay vs. scalar loop on one cached kernel.

    Cold is the first query on a fresh session (compulsory misses run
    through the scalar cache path in both implementations); warm is a
    second ``keep_cache=True`` query — the paper's reuse effect and the
    regime the paper's cached figures live in.  ``bit_identical`` asserts
    the two implementations produced the same clocks and cache statistics.
    """
    fast = Session(graph, _bench_config(graph, cached=True, fast_path=True))
    loop = Session(graph, _bench_config(graph, cached=True, fast_path=False))
    try:
        t0 = time.perf_counter()
        rf_cold = fast.run(kernel, keep_cache=True)
        fast_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        rl_cold = loop.run(kernel, keep_cache=True)
        loop_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        rf_warm = fast.run(kernel, keep_cache=True)
        fast_warm = time.perf_counter() - t0
        t0 = time.perf_counter()
        rl_warm = loop.run(kernel, keep_cache=True)
        loop_warm = time.perf_counter() - t0
    finally:
        fast.close()
        loop.close()
    identical = all(
        rf.outcome.clocks == rl.outcome.clocks
        and rf.adj_cache_stats == rl.adj_cache_stats
        and rf.offsets_cache_stats == rl.offsets_cache_stats
        for rf, rl in ((rf_cold, rl_cold), (rf_warm, rl_warm))
    )
    return {
        "cold_wall_clock_loop_s": loop_cold,
        "cold_wall_clock_batched_s": fast_cold,
        "cold_speedup": loop_cold / fast_cold,
        "warm_wall_clock_loop_s": loop_warm,
        "warm_wall_clock_batched_s": fast_warm,
        "warm_speedup": loop_warm / fast_warm,
        "bit_identical": identical,
        "adj_hit_rate": _hit_rate(rf_warm.adj_cache_stats),
        "offsets_hit_rate": _hit_rate(rf_warm.offsets_cache_stats),
    }


def bench_linalg(graph: CSRGraph) -> dict[str, Any]:
    """Masked-SpGEMM replay vs. the edge-centric scalar loop, uncached.

    Both sides run as resident sessions on the :data:`BENCH_GRID_NRANKS`
    square grid: the ``tc2d_spgemm`` kernel replays the packed SUMMA
    panels vectorized, the ``tc2d`` kernel is forced through its scalar
    per-round loop (``fast_path=False``).  Warm is the second query on
    the resident cluster — the regime the panels were built for.
    ``bit_identical`` asserts clocks, traces and triangle counts match
    the throwaway-oracle :func:`~repro.core.tc2d.run_distributed_tc_2d`
    on top of each other, and that ``lcc2d`` reproduces the 1D ``lcc``
    scores exactly.
    """
    import numpy as np

    from repro.core.tc2d import run_distributed_tc_2d

    cfg = _bench_config(graph, cached=False, nranks=BENCH_GRID_NRANKS)
    oracle = run_distributed_tc_2d(graph, cfg)
    spgemm = Session(graph, cfg)
    loop = Session(graph, _bench_config(graph, cached=False,
                                        fast_path=False,
                                        nranks=BENCH_GRID_NRANKS))
    try:
        rs_cold = spgemm.run("tc2d_spgemm")
        rl_cold = loop.run("tc2d")
        t0 = time.perf_counter()
        rs_warm = spgemm.run("tc2d_spgemm")
        spgemm_warm = time.perf_counter() - t0
        t0 = time.perf_counter()
        rl_warm = loop.run("tc2d")
        loop_warm = time.perf_counter() - t0
        lcc2d = spgemm.run("lcc2d")
    finally:
        spgemm.close()
        loop.close()
    lcc1d = run_kernel("lcc", graph, cfg)
    identical = all(
        r.outcome.clocks == oracle.outcome.clocks
        and r.global_triangles == oracle.global_triangles
        for r in (rs_cold, rs_warm, rl_cold, rl_warm)
    ) and bool(
        np.array_equal(lcc2d.lcc, lcc1d.lcc)
        and np.array_equal(lcc2d.triangles_per_vertex,
                           lcc1d.triangles_per_vertex)
        and lcc2d.global_triangles == oracle.global_triangles
    )
    return {
        "warm_wall_clock_loop_s": loop_warm,
        "warm_wall_clock_spgemm_s": spgemm_warm,
        "warm_speedup": loop_warm / spgemm_warm,
        "bit_identical": identical,
        "global_triangles": int(oracle.global_triangles),
        "nranks": BENCH_GRID_NRANKS,
    }


def bench_cached_tc2d(graph: CSRGraph) -> dict[str, Any]:
    """Batched cached-grid replay vs. the scalar cached loop for ``tc2d``.

    The deferred follow-up from the replay PR: on a square grid, warm
    cached ``tc2d`` queries ride :meth:`ClampiCache.access_batch` over
    the resident SUMMA panel stream instead of the per-round scalar
    ``ctx.get`` loop.  ``bit_identical`` covers clocks, results *and*
    the per-rank CLaMPI cache statistics of the resident block caches.
    """
    grid_ranks = BENCH_GRID_NRANKS
    fast = Session(graph, _bench_config(graph, cached=True,
                                        nranks=grid_ranks))
    loop = Session(graph, _bench_config(graph, cached=True, fast_path=False,
                                        nranks=grid_ranks))
    try:
        t0 = time.perf_counter()
        rf_cold = fast.run("tc2d", keep_cache=True)
        fast_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        rl_cold = loop.run("tc2d", keep_cache=True)
        loop_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        rf_warm = fast.run("tc2d", keep_cache=True)
        fast_warm = time.perf_counter() - t0
        t0 = time.perf_counter()
        rl_warm = loop.run("tc2d", keep_cache=True)
        loop_warm = time.perf_counter() - t0
        stats_fast = [c.stats.snapshot() for c in fast._c2d.caches]
        stats_loop = [c.stats.snapshot() for c in loop._c2d.caches]
    finally:
        fast.close()
        loop.close()
    identical = stats_fast == stats_loop and all(
        rf.outcome.clocks == rl.outcome.clocks
        and rf.global_triangles == rl.global_triangles
        for rf, rl in ((rf_cold, rl_cold), (rf_warm, rl_warm))
    )
    return {
        "cold_wall_clock_loop_s": loop_cold,
        "cold_wall_clock_batched_s": fast_cold,
        "cold_speedup": loop_cold / fast_cold,
        "warm_wall_clock_loop_s": loop_warm,
        "warm_wall_clock_batched_s": fast_warm,
        "warm_speedup": loop_warm / fast_warm,
        "bit_identical": identical,
        "nranks": grid_ranks,
    }


def run_bench(quick: bool = False,
              graphs: Mapping[str, CSRGraph] | None = None) -> dict[str, Any]:
    """Produce the full report dict (see module docstring for the shape)."""
    graphs = dict(graphs) if graphs is not None else bench_graphs(quick)
    report: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "nranks": BENCH_NRANKS,
        "threads": BENCH_THREADS,
        "grid_nranks": BENCH_GRID_NRANKS,
        "graphs": {name: {"vertices": g.n, "edges": g.m}
                   for name, g in graphs.items()},
        "kernels": {},
        "cached_replay": {},
        "linalg": {},
    }
    for gname, graph in graphs.items():
        for kernel in kernel_names():
            if get_kernel(kernel).undirected_only and graph.directed:
                continue
            try:
                row = bench_kernel(graph, kernel)
            except Exception as exc:
                # Plugin kernels may need extra options or return a
                # non-standard result; they don't belong in the recorded
                # trajectory, so skip them loudly instead of failing.
                print(f"bench: skipping kernel {kernel!r} on {gname!r}: "
                      f"{exc}", file=sys.stderr)
                continue
            report["kernels"][f"{kernel}:{gname}"] = row
        for kernel in ("lcc", "tc"):
            report["cached_replay"][f"{kernel}:{gname}"] = \
                bench_cached_replay(graph, kernel)
        report["linalg"][f"tc2d_spgemm:{gname}"] = bench_linalg(graph)
        report["linalg"][f"cached_tc2d:{gname}"] = bench_cached_tc2d(graph)
    return report


def check_report(report: Mapping[str, Any],
                 required_keys: tuple[str, ...] = REPORT_KEYS) -> None:
    """Schema sanity: required keys present, every number finite."""
    for key in required_keys:
        if key not in report:
            raise ValueError(f"bench report missing key {key!r}")

    def walk(node: Any, path: str) -> None:
        if isinstance(node, Mapping):
            for k, v in node.items():
                walk(v, f"{path}.{k}")
        elif isinstance(node, float) and not math.isfinite(node):
            raise ValueError(f"non-finite value at {path}: {node}")

    walk(report, "report")


def write_report(report: Mapping[str, Any], path: str,
                 required_keys: tuple[str, ...] = REPORT_KEYS) -> None:
    """Validate and write the report as pretty-printed JSON."""
    check_report(report, required_keys)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# The CI regression gate (``repro bench --check``)
# ---------------------------------------------------------------------------

#: Fraction of the baseline's per-kernel worst warm speedup a fresh run
#: must retain.  Deliberately loose: the committed baseline is recorded on
#: full-size graphs while CI measures ``--quick`` sizes on noisy shared
#: runners — the gate exists to catch the fast path silently degrading to
#: loop speed (ratio ~0.1) or losing exactness, not 10% wall-clock jitter.
DEFAULT_CHECK_TOLERANCE = 0.25

#: Absolute warm-speedup floor for every ``linalg`` row (the algebraic
#: replay vs. its scalar loop, and the batched cached-grid replay vs.
#: the scalar cached loop).  Unlike the relative ``cached_replay`` gate,
#: this is a hard contract from the kernels' acceptance criteria: the
#: vectorized paths beat their loops by far more than 2x on every size,
#: so 2x even on ``--quick`` runs only trips when a path degenerates.
LINALG_SPEEDUP_FLOOR = 2.0


def _min_warm_speedups(report: Mapping[str, Any]) -> dict[str, float]:
    """Per-kernel minimum warm speedup across that report's graphs."""
    mins: dict[str, float] = {}
    for key, row in report.get("cached_replay", {}).items():
        kernel = key.split(":", 1)[0]
        speedup = float(row["warm_speedup"])
        mins[kernel] = min(mins.get(kernel, math.inf), speedup)
    return mins


def check_against_baseline(report: Mapping[str, Any],
                           baseline: Mapping[str, Any], *,
                           tolerance: float = DEFAULT_CHECK_TOLERANCE
                           ) -> list[str]:
    """Compare a fresh bench report against the committed baseline.

    Returns human-readable problems (empty list means the gate passes):

    * every ``cached_replay`` row of the fresh report must be
      ``bit_identical`` — the batched replay may never drift from the
      per-edge loop oracle;
    * for each kernel the baseline records, the fresh report's worst warm
      loop-vs-batched speedup must stay above ``tolerance`` times the
      baseline's — the warm fast path must not silently regress;
    * when the baseline carries a ``linalg`` section, every fresh
      ``linalg`` row must be ``bit_identical`` and keep its warm speedup
      above the absolute :data:`LINALG_SPEEDUP_FLOOR`.

    Graph names are *not* matched across reports (CI runs ``--quick``
    sizes against the committed full-size baseline); the per-kernel
    minimum is the contract.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    problems = []
    replay = report.get("cached_replay", {})
    if not replay:
        problems.append("fresh report has no cached_replay section")
    if not baseline.get("cached_replay"):
        problems.append(
            "baseline has no cached_replay section (is --check pointed at "
            "a BENCH_kernels.json?)")
    for key, row in replay.items():
        if not row.get("bit_identical", False):
            problems.append(
                f"{key}: batched replay is no longer bit-identical to the "
                "per-edge loop")
    if baseline.get("linalg"):
        linalg = report.get("linalg", {})
        if not linalg:
            problems.append(
                "baseline records a linalg section but the fresh report "
                "has none")
        for key, row in sorted(linalg.items()):
            if not row.get("bit_identical", False):
                problems.append(
                    f"{key}: algebraic replay is no longer bit-identical "
                    "to its edge-centric oracle")
            speedup = float(row["warm_speedup"])
            if speedup < LINALG_SPEEDUP_FLOOR:
                problems.append(
                    f"{key}: warm speedup {speedup:.2f}x fell below the "
                    f"absolute {LINALG_SPEEDUP_FLOOR:.1f}x floor")
    fresh = _min_warm_speedups(report)
    for kernel, floor in sorted(_min_warm_speedups(baseline).items()):
        if kernel not in fresh:
            problems.append(
                f"kernel {kernel!r} present in the baseline but missing "
                "from the fresh report")
            continue
        threshold = tolerance * floor
        if fresh[kernel] < threshold:
            problems.append(
                f"{kernel}: warm speedup {fresh[kernel]:.2f}x fell below "
                f"{threshold:.2f}x ({tolerance:.0%} of the baseline's "
                f"{floor:.2f}x)")
    return problems


def load_report(path: str) -> dict[str, Any]:
    """Read a committed report back (the ``--check`` baseline)."""
    with open(path) as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# The cross-PR perf trajectory (``BENCH_trajectory.json``)
# ---------------------------------------------------------------------------

TRAJECTORY_SCHEMA_VERSION = 1

#: Committed at the repo root; every ``repro bench`` run appends one row,
#: so the file accumulates a dated perf history across PRs.
DEFAULT_TRAJECTORY_PATH = "BENCH_trajectory.json"


def trajectory_row(report: Mapping[str, Any], *,
                   date: str | None = None) -> dict[str, Any]:
    """Condense one bench report into a dated trajectory line."""
    import datetime

    kernels = report.get("kernels", {})
    walls = [float(row["wall_clock_s"]) for row in kernels.values()]
    hits = [float(row["adj_hit_rate"]) for row in kernels.values()
            if row.get("adj_hit_rate") is not None]
    linalg = [float(row["warm_speedup"])
              for row in report.get("linalg", {}).values()]
    return {
        "date": date or datetime.date.today().isoformat(),
        "kind": "kernels",
        "quick": bool(report.get("quick", False)),
        "n_kernels": len(kernels),
        "total_kernel_wall_s": sum(walls),
        "max_kernel_wall_s": max(walls, default=0.0),
        "mean_adj_hit_rate": (sum(hits) / len(hits)) if hits else 0.0,
        "min_warm_speedups": _min_warm_speedups(report),
        "min_linalg_speedup": min(linalg, default=0.0),
    }


def append_trajectory(report: Mapping[str, Any],
                      path: str = DEFAULT_TRAJECTORY_PATH, *,
                      date: str | None = None) -> dict[str, Any]:
    """Append one dated summary row to the trajectory file; returns the row.

    Creates the file on first use.  Rows are append-only — the point of
    the trajectory is that every PR (and every CI smoke run on a fresh
    checkout) leaves its perf data point behind chronologically.
    """
    return append_trajectory_row(trajectory_row(report, date=date), path)


def append_trajectory_row(row: Mapping[str, Any],
                          path: str = DEFAULT_TRAJECTORY_PATH
                          ) -> dict[str, Any]:
    """Append one already-condensed row to the trajectory file.

    The shared tail of every subsystem's trajectory hook (`repro bench`,
    `repro shard`): subsystems condense their own reports, this handles
    the durable append.
    """
    import os
    import tempfile

    from repro.analysis.schema import validate_trajectory_row

    problems = validate_trajectory_row(row)
    if problems:
        raise ValueError(
            f"refusing to append a malformed trajectory row: {problems[0]}")
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        data = {"schema_version": TRAJECTORY_SCHEMA_VERSION, "rows": []}
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is corrupt ({exc}); repair or delete it to restart "
            "the trajectory") from None
    if not isinstance(data, dict) or not isinstance(data.get("rows"), list):
        raise ValueError(
            f"{path} is not a trajectory file (expected a 'rows' list)")
    data["rows"].append(row)
    # Write-temp-then-rename: an interrupted run must never leave the
    # accumulated history truncated.
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".",
                               prefix=".trajectory-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise
    return row
