"""TriC: distributed-memory triangle counting with blocking all-to-all.

Reproduction of the baseline's *communication structure* (Ghosh &
Halappanavar, HPEC'20).  TriC "achieves TC in a per-vertex fashion,
implicitly computing LCC scores" through a **query-response** protocol
(paper Sections I and IV-B):

* each rank scans every local edge ``(v, j)``;
* if ``j`` is local, ``|adj(v) ∩ adj(j)|`` is counted immediately;
* otherwise the rank sends a **query** ``(j, adj(v))`` to ``j``'s owner,
  which computes the intersection against its local ``adj(j)`` and sends
  the count back in a **response** round;
* queries and responses travel in **blocking alltoallv** exchanges — every
  exchange synchronizes all ranks, which is the overhead the paper's
  asynchronous design removes.

Two structural properties follow directly and are what the paper measures:

1. query volume is *quadratic in hub degree* (a degree-``d`` vertex ships
   its ``d``-word adjacency ``d`` times) — this is why "TriC's memory
   demand significantly increases for scale-free graphs, often leading to
   out-of-memory errors", fixed by **TriC-Buffered**: per-destination
   buffers capped (at 16 MiB on the paper's testbed, because cray-mpich
   switches protocol above that), flushed with a full exchange when full;
2. every query is an individually matched two-sided message at the owner,
   paying matching overhead that one-sided RMA avoids.

The run returns per-vertex triangle counts and LCC scores like the
asynchronous implementation, so the two are compared end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import DistributedRunResult
from repro.core.intersect import count_common
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.graph.partition import BlockPartition1D
from repro.runtime.compute import ComputeModel
from repro.runtime.context import SimContext
from repro.runtime.engine import Engine
from repro.runtime.network import MemoryModel, NetworkModel
from repro.utils.errors import ConfigError
from repro.utils.units import MiB


@dataclass(frozen=True)
class TricConfig:
    """Configuration of a TriC run.

    ``buffer_capacity=None`` is plain TriC (single exchange, unbounded
    buffers — the variant that runs out of memory on scale-free graphs);
    a byte value is TriC-Buffered.  ``balanced`` mirrors TriC's ``-b``
    flag (the paper always passes it): split vertices so *edges*, not
    vertices, are balanced across ranks.
    """

    nranks: int = 8
    buffer_capacity: Optional[int] = None
    balanced: bool = True
    network: NetworkModel = field(default_factory=NetworkModel.aries)
    memory: MemoryModel = field(default_factory=MemoryModel)
    compute: ComputeModel = field(default_factory=ComputeModel)

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigError(f"nranks must be >= 1, got {self.nranks}")
        if self.buffer_capacity is not None and self.buffer_capacity <= 0:
            raise ConfigError("buffer_capacity must be positive or None")


class _EdgeBalancedPartition(BlockPartition1D):
    """Contiguous ranges chosen so each rank owns ~m/p adjacency entries.

    Approximates TriC's ``-b`` balanced partitioning while keeping the
    contiguous-range owner arithmetic.
    """

    def __init__(self, graph: CSRGraph, nranks: int):
        super().__init__(graph.n, nranks)
        total = graph.offsets[-1]
        targets = (np.arange(1, nranks) * total) // nranks
        cuts = np.searchsorted(graph.offsets[1:], targets, side="left") + 1
        starts = np.concatenate([[0], cuts, [graph.n]]).astype(np.int64)
        starts = np.maximum.accumulate(starts)  # keep monotone when degenerate
        self._starts = starts


def run_tric(graph: CSRGraph, config: TricConfig | None = None
             ) -> DistributedRunResult:
    """Count per-vertex triangles with the TriC protocol.

    Undirected graphs yield closed-triangle counts; directed graphs yield
    transitive-triad counts, the same semantics as the asynchronous LCC
    (so the Figure 9/10 series are comparable on LiveJournal1 etc.).
    """
    config = config or TricConfig()
    engine = Engine(config.nranks, network=config.network,
                    memory=config.memory, compute=config.compute)
    if config.balanced:
        part = _EdgeBalancedPartition(graph, config.nranks)
    else:
        part = BlockPartition1D(graph.n, config.nranks)
    dist = DistributedCSR(graph, part, engine)
    tpv = np.zeros(graph.n, dtype=np.int64)
    peak_buffer = np.zeros(config.nranks, dtype=np.int64)
    cap = config.buffer_capacity

    def rank_fn(ctx: SimContext):
        rank = ctx.rank
        nranks = ctx.nranks
        cm = config.compute
        net = config.network
        vs = dist.local_vertices(rank)
        offs_local = dist.w_offsets.local_part(rank)
        adj_local = dist.w_adj.local_part(rank)

        # Per-destination query buffers: lists of (j, candidate_array);
        # per-destination lists of the local vertex each query belongs to.
        buffers: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(nranks)]
        pending_v: list[list[int]] = [[] for _ in range(nranks)]
        buf_bytes = [0] * nranks

        def answer_queries(received):
            """Process incoming queries; build per-source response counts."""
            responses = []
            resp_bytes = []
            for batch in received:
                counts = np.empty(len(batch) if batch else 0, dtype=np.int64)
                for qi, (j, k_arr) in enumerate(batch or []):
                    # Matched two-sided message handling per query.
                    dt = net.alpha + net.match_overhead
                    ctx.advance(dt)
                    ctx.trace.comm_time += dt
                    adj_j = dist.local_adj(rank, int(j))
                    ctx.compute(cm.hybrid_time(k_arr.shape[0], adj_j.shape[0]))
                    counts[qi] = count_common(adj_j, k_arr, "hybrid")
                responses.append(counts)
                resp_bytes.append(8 * counts.shape[0])
            return responses, resp_bytes

        def exchange_round(active: int):
            """One query exchange + one response exchange + liveness vote."""
            payloads = [buffers[d] for d in range(nranks)]
            nbytes = [buf_bytes[d] for d in range(nranks)]
            peak_buffer[rank] = max(peak_buffer[rank], sum(nbytes))
            sent_v = [pending_v[d] for d in range(nranks)]
            for d in range(nranks):
                buffers[d] = []
                pending_v[d] = []
                buf_bytes[d] = 0
            received = yield ctx.alltoallv(payloads, nbytes)
            responses, resp_bytes = answer_queries(received)
            answers = yield ctx.alltoallv(responses, resp_bytes)
            # Credit the returned counts to the querying vertices.
            for d in range(nranks):
                counts = answers[d]
                for v, c in zip(sent_v[d], counts):
                    tpv[v] += int(c)
            remaining = yield ctx.allreduce(float(active))
            return int(remaining)

        vi = 0   # vertex cursor
        ji = 0   # edge cursor inside the current vertex's adjacency
        cur_a: np.ndarray | None = None
        while True:
            over = False
            while vi < vs.shape[0] and not over:
                v = int(vs[vi])
                if cur_a is None:
                    cur_a = adj_local[offs_local[vi]:offs_local[vi + 1]]
                    ji = 0
                    dt = config.memory.local_read_time(cur_a.nbytes)
                    ctx.advance(dt)
                    ctx.trace.comp_time += dt
                while ji < cur_a.shape[0]:
                    j = int(cur_a[ji])
                    ji += 1
                    owner = part.owner(j)
                    if owner == rank:
                        adj_j = dist.local_adj(rank, j)
                        ctx.compute(cm.hybrid_time(cur_a.shape[0],
                                                   adj_j.shape[0]))
                        tpv[v] += count_common(cur_a, adj_j, "hybrid")
                    else:
                        q_bytes = (2 + cur_a.shape[0]) * 4
                        buffers[owner].append((j, cur_a))
                        pending_v[owner].append(v)
                        buf_bytes[owner] += q_bytes
                        # Packing + injection of one matched message: the
                        # sender posts an individual Isend per query and
                        # pays roughly half the one-way latency plus the
                        # send-side share of matching.
                        dt_pack = (cm.edge_overhead
                                   + cur_a.shape[0] * cm.c_ssi
                                   + 0.5 * net.alpha
                                   + 0.5 * net.match_overhead)
                        ctx.advance(dt_pack)
                        ctx.trace.comm_time += dt_pack
                        if cap is not None and buf_bytes[owner] >= cap:
                            over = True
                            break
                if ji >= cur_a.shape[0]:
                    cur_a = None
                    vi += 1
            done_scanning = vi >= vs.shape[0]
            active = 0 if done_scanning and not any(buf_bytes) else 1
            remaining = yield from exchange_round(active)
            if done_scanning and not any(buf_bytes) and remaining == 0:
                break

        local_triplets = float(sum(int(tpv[int(v)]) for v in vs))
        total = yield ctx.allreduce(local_triplets)
        return int(total)

    outcome = engine.run(rank_fn)
    total_triplets = int(outcome.results[0])
    deg = graph.degrees().astype(np.float64)
    denom = deg * (deg - 1.0)
    lcc = np.zeros(graph.n)
    mask = denom > 0
    lcc[mask] = tpv[mask] / denom[mask]
    result = DistributedRunResult(
        lcc=lcc,
        triangles_per_vertex=tpv,
        global_triangles=(total_triplets if graph.directed
                          else total_triplets // 6),
        outcome=outcome,
    )
    # Expose TriC's memory pressure (the reason TriC-Buffered exists).
    result.peak_buffer_bytes = int(peak_buffer.max())  # type: ignore[attr-defined]
    return result


def run_tric_buffered(graph: CSRGraph, nranks: int = 8,
                      buffer_capacity: int = 16 * MiB,
                      **kwargs) -> DistributedRunResult:
    """TriC-Buffered: TriC with per-destination buffers capped (paper IV-B)."""
    return run_tric(graph, TricConfig(nranks=nranks,
                                      buffer_capacity=buffer_capacity,
                                      **kwargs))
