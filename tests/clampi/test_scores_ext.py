"""Tests for the extended eviction-score policies."""

import numpy as np
import pytest

from repro.clampi.allocator import BufferAllocator
from repro.clampi.cache import CacheEntry, ClampiCache, ClampiConfig
from repro.clampi.scores_ext import (
    EXTENDED_POLICIES,
    CostAwareScorePolicy,
    DensityScorePolicy,
    HybridDegreeLRUPolicy,
    LFUScorePolicy,
)
from repro.runtime.window import Window


def entry(key, nbytes, offset, clock, n_accesses=1, app_score=None):
    e = CacheEntry(key, np.zeros(max(1, nbytes // 8), dtype=np.int64),
                   offset, nbytes, clock, app_score)
    e.n_accesses = n_accesses
    return e


@pytest.fixture
def alloc():
    a = BufferAllocator(10_000)
    return a


class TestLFU:
    def test_frequency_ordering(self, alloc):
        o1, o2 = alloc.alloc(100), alloc.alloc(100)
        pol = LFUScorePolicy()
        cold = entry("a", 100, o1, clock=90, n_accesses=1)
        hot = entry("b", 100, o2, clock=10, n_accesses=50)
        assert pol.victim_score(cold, alloc, 100) < pol.victim_score(hot, alloc, 100)


class TestCostAware:
    def test_size_scales_value(self, alloc):
        o1, o2 = alloc.alloc(100), alloc.alloc(1000)
        pol = CostAwareScorePolicy()
        small = entry("a", 100, o1, clock=50, n_accesses=3)
        big = entry("b", 1000, o2, clock=50, n_accesses=3)
        assert pol.victim_score(small, alloc, 100) < pol.victim_score(big, alloc, 100)


class TestDensity:
    def test_density_prefers_small_hot(self, alloc):
        o1, o2 = alloc.alloc(100), alloc.alloc(1000)
        pol = DensityScorePolicy()
        small_hot = entry("a", 100, o1, clock=50, n_accesses=5)
        big_warm = entry("b", 1000, o2, clock=50, n_accesses=6)
        assert (pol.victim_score(big_warm, alloc, 100)
                < pol.victim_score(small_hot, alloc, 100))


class TestHybridDegreeLRU:
    def test_degree_dominates_at_high_weight(self, alloc):
        o1, o2 = alloc.alloc(100), alloc.alloc(100)
        pol = HybridDegreeLRUPolicy(weight=0.9)
        hub = entry("hub", 100, o1, clock=5, app_score=800.0)
        leaf = entry("leaf", 100, o2, clock=95, app_score=2.0)
        assert pol.victim_score(leaf, alloc, 100) < pol.victim_score(hub, alloc, 100)

    def test_recency_dominates_at_low_weight(self, alloc):
        o1, o2 = alloc.alloc(100), alloc.alloc(100)
        pol = HybridDegreeLRUPolicy(weight=0.05)
        hub_stale = entry("hub", 100, o1, clock=5, app_score=800.0)
        leaf_fresh = entry("leaf", 100, o2, clock=95, app_score=2.0)
        assert (pol.victim_score(hub_stale, alloc, 100)
                < pol.victim_score(leaf_fresh, alloc, 100))

    def test_uses_app_score(self):
        assert HybridDegreeLRUPolicy().uses_app_score

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridDegreeLRUPolicy(weight=1.5)
        with pytest.raises(ValueError):
            HybridDegreeLRUPolicy(degree_norm=0)


class TestPoliciesInCache:
    @pytest.mark.parametrize("name", sorted(EXTENDED_POLICIES))
    def test_policy_runs_in_cache(self, name):
        win = Window("adj", [np.arange(256, dtype=np.int64)] * 2)
        win.lock_all(0)
        policy_cls = EXTENDED_POLICIES[name]
        policy = policy_cls()
        kwargs = dict(capacity_bytes=512, nslots=64, score_policy=policy)
        if policy.uses_app_score:
            kwargs["app_score_fn"] = lambda t, o, c, d: float(c)
        cache = ClampiCache(win, 0, ClampiConfig(**kwargs))
        rng = np.random.default_rng(0)
        for _ in range(300):
            off = int(rng.integers(0, 200))
            data, _, _ = cache.access(1, off, 4)
            np.testing.assert_array_equal(data,
                                          win.local_part(1)[off:off + 4])
        cache.check_invariants()
