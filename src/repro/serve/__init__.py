"""Multi-tenant query serving over resident :class:`~repro.session.Session`s.

The paper's caching effect is per query: a warm CLaMPI cache makes a
repeated remote-access pattern cheap.  This package turns that into a
system-level property: a bounded pool of resident simulated clusters
(:mod:`repro.serve.pool`), a synthetic multi-tenant query workload with
Poisson arrivals and Zipf-skewed popularity (:mod:`repro.serve.workload`),
pluggable schedulers that decide which queued query runs next
(:mod:`repro.serve.scheduler`), and a serving engine that executes the
workload and accounts per-query latency and aggregate throughput on the
simulated clock (:mod:`repro.serve.engine`).

Quickstart::

    from repro.serve import (CacheAffinityScheduler, ServeConfig,
                             ServingEngine, WorkloadSpec, default_catalog,
                             generate_workload)

    catalog = default_catalog()
    workload = generate_workload(
        WorkloadSpec(n_queries=200, arrival_rate=200.0, n_tenants=12,
                     graphs=tuple(catalog), seed=7))
    engine = ServingEngine(catalog, ServeConfig(pool_capacity=3),
                           scheduler=CacheAffinityScheduler())
    outcome = engine.serve(workload)
    print(outcome.aggregates["throughput_qps"])

``repro serve`` exposes the same loop on the command line, and
``analysis/serving.py`` records the FIFO-vs-affinity comparison in the
committed ``BENCH_serve.json``.
"""

from repro.serve.engine import (
    AsyncServeConfig,
    AsyncServingEngine,
    ServeConfig,
    ServingEngine,
)
from repro.serve.pool import PoolStats, SessionPool
from repro.serve.records import (
    AsyncServeOutcome,
    QueryRecord,
    RejectRecord,
    ServeOutcome,
    UpdateRecord,
    answers_identical,
    concurrency_profile,
    summarize,
)
from repro.serve.request import (
    QueryRequest,
    SessionKey,
    UpdateRequest,
    arrival_order,
)
from repro.serve.scheduler import (
    SCHEDULERS,
    CacheAffinityScheduler,
    FIFOScheduler,
    InterleaveScheduler,
    Scheduler,
    coalescible_updates,
    eligible_requests,
    make_scheduler,
)
from repro.serve.tasks import Task, make_task
from repro.serve.workload import (
    WorkloadSpec,
    default_catalog,
    generate_workload,
    zipf_weights,
)

__all__ = [
    "AsyncServeConfig",
    "AsyncServeOutcome",
    "AsyncServingEngine",
    "CacheAffinityScheduler",
    "FIFOScheduler",
    "InterleaveScheduler",
    "PoolStats",
    "QueryRecord",
    "QueryRequest",
    "RejectRecord",
    "SCHEDULERS",
    "Scheduler",
    "ServeConfig",
    "ServeOutcome",
    "ServingEngine",
    "SessionKey",
    "SessionPool",
    "Task",
    "UpdateRecord",
    "UpdateRequest",
    "WorkloadSpec",
    "answers_identical",
    "arrival_order",
    "coalescible_updates",
    "concurrency_profile",
    "default_catalog",
    "eligible_requests",
    "generate_workload",
    "make_scheduler",
    "make_task",
    "summarize",
    "zipf_weights",
]
