"""The serving engines: serial oracle and cooperative async runtime.

Two engines share one vocabulary (:mod:`repro.serve.records`), one task
model boundary and one commit path:

* :class:`ServingEngine` — the **serial oracle**.  One request at a
  time on the simulated clock; every answer digest and version history
  it produces is the reference the async engine is pinned against.
* :class:`AsyncServingEngine` — the **cooperative runtime**.  Requests
  become resumable tasks (:mod:`repro.serve.tasks`) multiplexed over
  ``workers`` logical workers by a discrete-event loop on the simulated
  clock: queries against disjoint (graph, shard-set) keys overlap with
  update application instead of serializing behind the per-graph fence.
  It adds the adaptive **coalescing window** (an admitted update leader
  holds for a bounded window to absorb rider updates — never past its
  deadline), **admission control + backpressure** (bounded run queue
  with a shed-or-defer overflow policy), and starvation-bounded
  dispatch.

Time is accounted on two clocks at once:

* the **simulated clock** advances by each request's simulated job time
  (:attr:`DistributedRunResult.time` — the paper's longest-rank metric),
  so queueing latency, overlap and throughput are properties of the
  modeled cluster, not of the Python interpreter;
* **wall time** is measured per request too, because the repo's batched
  replay makes warm queries cheaper *to simulate* as well.

Python execution stays sequential — overlap is a property of the
simulated timeline.  That is what makes the safety argument airtight:
the event loop processes completions in deterministic simulated order,
so for a fixed workload and scheduler the run is bit-reproducible, and
the per-(graph, shard-set) fences guarantee any interleaving observes
the same versions and returns the same bits as the serial oracle (the
property suite drives randomized interleavings to pin exactly that).

**Updates** are writes against the
:class:`~repro.graphstore.store.GraphStore`, not against any one
session: an :class:`~repro.serve.request.UpdateRequest` commits its edge
batch to the store — advancing the graph's single
:class:`~repro.graphstore.store.GraphVersion` — and the resulting delta
is propagated to **every** resident session of that graph (any variant),
each resyncing surgically (touched 1D slices, touched 2D blocks,
targeted CLaMPI invalidation + rekeying).  Consecutive queued updates
for one graph are **coalesced**: each still commits its own version (so
the history is scheduler-independent), but the expensive resident resync
runs once, on the merged delta of a single
:class:`~repro.dynamic.delta.DeltaBuffer` flush — pinned equal to
sequential application.  The queue is pre-filtered through the
per-graph update fences (:func:`~repro.serve.scheduler
.eligible_requests`) before any scheduler pick, and update digests are
the store's *chained* history digests — so the identical-answers check
proves every scheduler serialized each graph's reads and writes, and
its version history, the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.core.config import CacheSpec, LCCConfig
from repro.dynamic.delta import DeltaBuffer, UpdateBatch, apply_delta
from repro.graph.csr import CSRGraph
from repro.graphstore.store import GraphStore, graph_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import activate
from repro.obs.trace import span as obs_span
from repro.serve.pool import SessionPool
from repro.serve.records import (
    AsyncServeOutcome,
    QueryRecord,
    RejectRecord,
    ServeOutcome,
    UpdateRecord,
    answers_identical,
    concurrency_profile,
    result_digest,
    summarize,
)
from repro.serve.request import QueryRequest, UpdateRequest, arrival_order
from repro.serve.scheduler import (
    FIFOScheduler,
    Scheduler,
    coalescible_updates,
    eligible_requests,
)
from repro.serve.tasks import (
    Acquire,
    Commit,
    Committed,
    Executed,
    Hold,
    Run,
    Task,
    effect_name,
    make_task,
)
from repro.utils.errors import ConfigError

#: Back-compat alias: the digest helper moved to :mod:`repro.serve.records`.
_digest = result_digest

__all__ = [
    "AsyncServeConfig",
    "AsyncServingEngine",
    "QueryRecord",
    "RejectRecord",
    "ServeConfig",
    "ServeOutcome",
    "AsyncServeOutcome",
    "ServingEngine",
    "UpdateRecord",
    "answers_identical",
    "summarize",
]


@dataclass(frozen=True)
class ServeConfig:
    """Cluster shape + pool sizing every served query shares."""

    nranks: int = 8
    threads: int = 4
    cache_offsets_fraction: float = 0.5   # of each graph's CSR bytes
    cache_adj_fraction: float = 1.0
    pool_capacity: int = 3
    pool_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.cache_offsets_fraction < 0 or self.cache_adj_fraction < 0:
            raise ConfigError("cache fractions must be >= 0")

    def session_config(self, graph: CSRGraph, overrides: dict) -> LCCConfig:
        """The LCCConfig a resident session for ``graph`` is built with."""
        cache = None
        if self.cache_offsets_fraction or self.cache_adj_fraction:
            cache = CacheSpec.relative(graph.nbytes,
                                       self.cache_offsets_fraction,
                                       self.cache_adj_fraction)
        return LCCConfig(nranks=self.nranks, threads=self.threads,
                         cache=cache, **overrides)


@dataclass(frozen=True)
class AsyncServeConfig(ServeConfig):
    """Cooperative-runtime knobs on top of the shared cluster shape.

    * ``workers`` — logical concurrency: how many tasks may occupy the
      simulated timeline at once.  ``workers=1`` degenerates to serial
      service order (a useful sanity anchor for the parity tests).
    * ``max_queue`` / ``overflow`` — admission control: a request
      arriving while ``max_queue`` admitted requests wait is either
      **deferred** (admitted later, keeping arrival-order latency
      accounting — latency still counts from its true arrival) or
      **shed** (rejected outright; it never executes, never commits and
      never appears in the answer digests).  ``max_queue=0`` disables
      the bound.
    * ``coalesce_window_s`` / ``adaptive_window`` — group commit: an
      admitted update leader holds for a bounded window to absorb rider
      updates into one resident resync.  The window never extends past
      ``arrival + slo_update_s`` (the deadline bound the fairness tests
      pin) and closes early when a query on the graph arrives.  The
      adaptive controller halves the window after an empty hold and
      re-doubles it (capped at the configured base) after an absorbing
      one, so idle graphs stop paying hold latency.
    * ``starvation_limit`` — fairness: a runnable request passed over
      this many dispatch decisions is dispatched before any other,
      whatever the policy says, bounding every admitted request's wait
      in scheduler steps.
    """

    workers: int = 4
    max_queue: int = 0                 # 0 = unbounded run queue
    overflow: str = "defer"            # "defer" | "shed"
    coalesce_window_s: float = 0.01
    adaptive_window: bool = True
    slo_query_s: float = 0.5
    slo_update_s: float = 0.05
    starvation_limit: int = 64

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 0:
            raise ConfigError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.overflow not in ("defer", "shed"):
            raise ConfigError(f"unknown overflow policy {self.overflow!r}; "
                              "expected 'defer' or 'shed'")
        if self.coalesce_window_s < 0:
            raise ConfigError("coalesce_window_s must be >= 0, got "
                              f"{self.coalesce_window_s}")
        if self.slo_query_s <= 0 or self.slo_update_s <= 0:
            raise ConfigError("SLO bounds must be > 0")
        if self.starvation_limit < 1:
            raise ConfigError("starvation_limit must be >= 1, got "
                              f"{self.starvation_limit}")


def _commit_update_group(store, pool: SessionPool,
                         group: list[UpdateRequest]
                         ) -> tuple[list, dict, float]:
    """Commit a coalesced run of updates for one graph.

    Every member advances the store by its own version (the history is
    per-request, hence scheduler-independent), but the resident resync
    runs once: the group's operations merge through a single
    :class:`~repro.dynamic.delta.DeltaBuffer` flush whose last-
    writer-wins result is pinned equal to the sequential chain, and that
    one merged delta propagates to every resident session of the graph.
    Shared by both engines.  Returns ``(store updates, combined outcome
    fields, simulated service seconds)``.
    """
    name = group[0].graph
    pre_graph = store.graph(name)
    updates = []
    for req in group:
        batch = UpdateBatch.build(req.inserts, req.deletes,
                                  n=pre_graph.n,
                                  directed=pre_graph.directed)
        updates.append(store.apply(name, batch,
                                   coalesced=len(group) - 1))
    final = store.graph(name)
    if len(group) == 1:
        combined = updates[0].delta
    else:
        buffer = DeltaBuffer(pre_graph.n, pre_graph.directed)
        for req in group:
            if req.inserts is not None:
                buffer.insert_edges(req.inserts)
            if req.deletes is not None:
                buffer.delete_edges(req.deletes)
        combined = apply_delta(pre_graph, buffer.freeze(), strict=False)
        if graph_digest(combined.graph) != graph_digest(final):
            # Coalesced == sequential is a structural invariant (the
            # property suite pins it); serving stale resident slices
            # would be silent corruption, so fail loudly.
            raise ConfigError(
                f"coalesced flush for {name!r} diverged from the "
                "sequential version chain")
        # Resync resident state to the chain's own head snapshot so
        # sessions and store share one graph object.
        combined.graph = final
    outcomes = [session.sync_to(combined)
                for _, session in pool.sessions_of(name)]
    service = max((o.time for o in outcomes), default=0.0)
    fields = {
        "n_affected": int(combined.affected.shape[0]),
        "invalidated_entries": sum(o.invalidated_entries
                                   for o in outcomes),
        "retained_entries": sum(o.retained_entries for o in outcomes),
        "rekeyed_entries": sum(o.rekeyed_entries for o in outcomes),
        "sessions_synced": len(outcomes),
    }
    return updates, fields, service


class ServingEngine:
    """Drain workloads against a catalog with one scheduler and one pool.

    The serial oracle: one request at a time, per-graph fences enforced
    before every pick.  Its digests and version histories define what
    "correct" means for the cooperative engine.
    """

    def __init__(self, catalog: dict[str, CSRGraph],
                 config: ServeConfig | None = None,
                 scheduler: Scheduler | None = None,
                 store_factory=None):
        self.catalog = catalog
        self.config = config or ServeConfig()
        self.scheduler = scheduler or FIFOScheduler()
        #: ``catalog -> store``; defaults to a plain GraphStore.  A
        #: sharded serving run passes e.g. ``lambda c:
        #: ShardedGraphStore(c, nshards=4)`` — any store duck-typing the
        #: GraphStore surface (graph/apply/version/digest/names) works.
        self.store_factory = store_factory

    def _make_store(self):
        if self.store_factory is not None:
            return self.store_factory(self.catalog)
        return GraphStore(self.catalog)

    def _commit_updates(self, store, pool: SessionPool,
                        group: list[UpdateRequest]) -> tuple[list, Any, float]:
        return _commit_update_group(store, pool, group)

    def serve(self, requests: list[QueryRequest]) -> ServeOutcome:
        """Serve every request; returns records + aggregates.

        The graph store and pool are fresh per call (a serving run is
        self-contained), the scheduler is reset, and the loop is fully
        deterministic for a deterministic workload — wall-clock fields
        aside.
        """
        if not requests:
            raise ConfigError("cannot serve an empty workload")
        config, scheduler = self.config, self.scheduler
        scheduler.reset()
        records: list[QueryRecord] = []
        update_records: list[UpdateRecord] = []
        updates_coalesced = 0
        pending = sorted(requests, key=arrival_order)
        queue: list = []
        clock = 0.0
        last_key = None
        t_run = time.perf_counter()
        store = self._make_store()
        with SessionPool(store, config.session_config,
                         capacity=config.pool_capacity,
                         policy=config.pool_policy) as pool:
            while pending or queue:
                if not queue:               # idle server: jump to next arrival
                    clock = max(clock, pending[0].arrival)
                while pending and pending[0].arrival <= clock:
                    queue.append(pending.pop(0))
                # Per-graph update fences are enforced here, before any
                # policy runs: no scheduler can reorder a graph's reads
                # around its writes.
                req = scheduler.pick(eligible_requests(queue), last_key, pool)
                t0 = time.perf_counter()
                if req.is_update:
                    group = [req] + coalescible_updates(queue, req)
                    for member in group:
                        queue.remove(member)
                    updates_coalesced += len(group) - 1
                    updates, fields, service = self._commit_updates(
                        store, pool, group)
                    wall = time.perf_counter() - t0
                    start = max(clock, req.arrival)
                    finish = start + service
                    clock = finish
                    last_key = req.session_key
                    for i, (r, u) in enumerate(zip(group, updates)):
                        head = i == 0
                        update_records.append(UpdateRecord(
                            qid=r.qid, tenant=r.tenant, graph=r.graph,
                            arrival=r.arrival, start=start, finish=finish,
                            service_s=service if head else 0.0,
                            wall_s=wall if head else 0.0,
                            n_inserted=u.delta.n_inserted,
                            n_deleted=u.delta.n_deleted,
                            version=u.version.version,
                            digest=u.digest,
                            coalesced=not head,
                            **(fields if head else {
                                "n_affected": int(u.delta.affected.shape[0]),
                                "invalidated_entries": 0,
                                "retained_entries": 0,
                                "rekeyed_entries": 0,
                                "sessions_synced": 0,
                            })))
                    continue
                queue.remove(req)
                session, built = pool.acquire(req.session_key)
                result = session.run(req.kernel, keep_cache=True)
                wall = time.perf_counter() - t0
                service = float(result.time)
                start = max(clock, req.arrival)
                finish = start + service
                clock = finish
                last_key = req.session_key
                stats = result.adj_cache_stats
                version = store.version(req.graph).version
                records.append(QueryRecord(
                    qid=req.qid, tenant=req.tenant, graph=req.graph,
                    kernel=req.kernel, arrival=req.arrival, start=start,
                    finish=finish, service_s=service, wall_s=wall,
                    warm_cache=result.warm_cache, built_session=built,
                    adj_hit_rate=(None if stats is None
                                  else float(stats["hit_rate"])),
                    version=version,
                    digest=result_digest(result, version)))
            pool_stats = pool.stats.as_dict()
        wall_clock = time.perf_counter() - t_run
        records.sort(key=lambda r: r.qid)
        update_records.sort(key=lambda r: r.qid)
        outcome = ServeOutcome(
            scheduler=scheduler.name, records=records,
            pool_stats=pool_stats, wall_clock_s=wall_clock,
            update_records=update_records,
            graph_versions={name: (store.version(name).version,
                                   store.digest(name))
                            for name in store.names()})
        outcome.aggregates = summarize(records, pool_stats, wall_clock,
                                       update_records, updates_coalesced)
        return outcome


class _Inflight:
    """A task occupying a worker until a simulated completion time."""

    __slots__ = ("task", "finish", "worker", "payload")

    def __init__(self, task: Task, finish: float, worker: int, payload):
        self.task = task
        self.finish = finish
        self.worker = worker
        self.payload = payload


class _Holding:
    """An update-leader task holding its coalescing window open.

    ``planned`` keeps the close time the window was opened with;
    ``close`` may later be pulled earlier by a query arrival, and the
    journal derives the close *reason* from the difference.
    """

    __slots__ = ("task", "close", "worker", "start", "planned")

    def __init__(self, task: Task, close: float, worker: int, start: float,
                 planned: float | None = None):
        self.task = task
        self.close = close
        self.worker = worker
        self.start = start
        self.planned = close if planned is None else planned


class AsyncServingEngine(ServingEngine):
    """Cooperative multi-worker serving on the simulated clock.

    A discrete-event loop multiplexes resumable tasks over ``workers``
    logical workers.  Each iteration: admit arrivals (applying the
    backpressure policy), close due coalescing windows, retire due
    completions, dispatch while workers are free, then advance the
    clock to the next event.  Dispatch admits only requests the
    per-(graph, shard-set) fences allow **against everything known** —
    waiting, deferred, holding and running requests alike — so no task
    can start ahead of a conflicting earlier-arrival request, which is
    the whole bit-identity argument: a query's answer depends only on
    the store version its arrival order dictates, and warm caches
    change timing, never answers.
    """

    def __init__(self, catalog: dict[str, CSRGraph],
                 config: AsyncServeConfig | None = None,
                 scheduler: Scheduler | None = None,
                 store_factory=None, observation=None):
        super().__init__(catalog, config or AsyncServeConfig(),
                         scheduler, store_factory)
        if not isinstance(self.config, AsyncServeConfig):
            raise ConfigError(
                "AsyncServingEngine needs an AsyncServeConfig "
                f"(got {type(self.config).__name__})")
        #: Optional :class:`repro.obs.Observation`: a span tracer and/or
        #: decision journal to populate during :meth:`serve`.  ``None``
        #: (the default) keeps the plain fast path — tracing costs
        #: nothing it doesn't collect, and never changes answers.
        self.observation = observation

    # -- event-loop state is per-serve(), threaded through explicitly ------

    def serve(self, requests: list[QueryRequest]) -> AsyncServeOutcome:
        if not requests:
            raise ConfigError("cannot serve an empty workload")
        cfg: AsyncServeConfig = self.config
        scheduler = self.scheduler
        scheduler.reset()
        t_run = time.perf_counter()
        store = self._make_store()

        pending = sorted(requests, key=arrival_order)
        waiting: list[Task] = []       # admitted, runnable (the run queue)
        deferred: list[Task] = []      # known, waiting for a queue slot
        running: list[_Inflight] = []
        holding: list[_Holding] = []
        free_workers = list(range(cfg.workers))
        locks: set = set()             # session keys owned by running queries

        records: list[QueryRecord] = []
        update_records: list[UpdateRecord] = []
        rejected: list[RejectRecord] = []
        window_s = cfg.coalesce_window_s
        clock = 0.0
        last_key = None

        obs = self.observation
        tracer = getattr(obs, "tracer", None)
        journal = getattr(obs, "journal", None)
        registry = MetricsRegistry()
        c_decisions = registry.counter(
            "engine.decisions", "dispatch decisions the event loop made")
        c_queue_steps = registry.counter(
            "engine.queue_steps", "times a runnable task was passed over")
        c_admitted = registry.counter(
            "engine.admitted", "requests that entered the run queue")
        c_deferred = registry.counter(
            "engine.deferred", "arrivals parked by a full run queue")
        c_shed = registry.counter(
            "engine.shed", "arrivals rejected outright")
        c_starved = registry.counter(
            "engine.starvation_overrides",
            "dispatches forced by the starvation limit")
        c_windows = registry.counter(
            "engine.windows_opened", "coalescing windows opened")
        c_riders = registry.counter(
            "engine.updates_coalesced", "updates that rode another's flush")
        c_commits = registry.counter(
            "engine.commits", "update groups committed to the store")
        h_held = registry.histogram(
            "engine.window_held_s", "simulated hold before each commit")

        def jot(ev: str, **fields) -> None:
            """Journal one decision at the engine's current clock."""
            if journal is not None:
                journal.append(ev, clock, **fields)

        def tick(t: float) -> None:
            """Move the tracer's simulated 'now' with the engine."""
            if tracer is not None:
                tracer.now = t

        def inflight_requests():
            """Everything the fence must see beyond the run queue."""
            return ([t.request for t in deferred]
                    + [r.task.request for r in running]
                    + [h.task.request for h in holding])

        def admit() -> bool:
            """Move due arrivals into the run queue (or shed/defer them)."""
            nonlocal clock
            changed = False
            while pending and pending[0].arrival <= clock:
                req = pending.pop(0)
                if cfg.max_queue and len(waiting) >= cfg.max_queue:
                    if cfg.overflow == "shed":
                        rejected.append(RejectRecord(
                            qid=req.qid, tenant=req.tenant, graph=req.graph,
                            arrival=req.arrival, is_update=req.is_update,
                            queue_depth=len(waiting)))
                        c_shed.inc()
                        jot("shed", qid=req.qid, graph=req.graph,
                            queue_depth=len(waiting))
                        changed = True
                        continue
                    task = make_task(req)
                    task.deferred = True
                    deferred.append(task)
                    c_deferred.inc()
                    jot("defer", qid=req.qid, graph=req.graph,
                        queue_depth=len(waiting))
                else:
                    waiting.append(make_task(req))
                    c_admitted.inc()
                    jot("admit", qid=req.qid, graph=req.graph,
                        is_update=req.is_update, arrival=req.arrival)
                # A freshly-arrived query closes any open window on its
                # graph: the leader must commit before the query can
                # observe its version, so holding longer only adds
                # latency without any chance of another rider.
                if not req.is_update:
                    for h in holding:
                        if h.task.request.graph == req.graph:
                            h.close = min(h.close, clock)
                changed = True
            # Refill freed run-queue slots in arrival order.
            while deferred and (not cfg.max_queue
                                or len(waiting) < cfg.max_queue):
                task = deferred.pop(0)
                waiting.append(task)
                c_admitted.inc()
                jot("admit", qid=task.request.qid,
                    graph=task.request.graph,
                    is_update=task.request.is_update,
                    arrival=task.request.arrival, promoted=True)
                changed = True
            return changed

        def gather_riders(leader_task: Task) -> list[Task]:
            """Waiting updates forming a contiguous arrival-order run
            behind the leader on its graph.

            The run walks every *uncommitted* known same-graph request —
            waiting, deferred, and other holding leaders — in arrival
            order and stops at the first one that is not an update
            sitting in the run queue: riding over a deferred request, a
            queued query or another open window would reorder its commit
            or version observation.  If any same-graph request *older*
            than the leader is still uncommitted (a disjoint-shard
            leader may overtake one), the merge set is empty — exactly
            :func:`~repro.serve.scheduler.coalescible_updates`'s gap
            rule.
            """
            leader = leader_task.request
            uncommitted = (waiting + deferred
                           + [h.task for h in holding
                              if h.task is not leader_task])
            known = sorted(
                (t for t in uncommitted
                 if t.request.graph == leader.graph),
                key=lambda t: arrival_order(t.request))
            riders = []
            for t in known:
                if arrival_order(t.request) < arrival_order(leader):
                    return []
                if not t.request.is_update or t not in waiting:
                    break
                riders.append(t)
            return riders

        def close_window(h: _Holding) -> None:
            """Commit a leader plus whatever riders its window absorbed."""
            nonlocal window_s
            leader = h.task.request
            riders = gather_riders(h.task)
            rider_qids = [t.request.qid for t in riders]
            jot("window_close", qid=leader.qid, graph=leader.graph,
                close=h.close, riders=rider_qids,
                reason=("deadline" if h.close >= h.planned
                        else "query_arrival"))
            for t in riders:
                waiting.remove(t)
            h.task.resume([t.request for t in riders])
            effect = h.task.effect
            if not isinstance(effect, Commit):  # pragma: no cover - guard
                raise ConfigError("update task must commit after its hold")
            t0 = time.perf_counter()
            group = [effect.leader, *effect.riders]
            tick(h.close)
            with obs_span("commit", cat="task", worker=h.worker,
                          qid=leader.qid, graph=leader.graph,
                          group=len(group)) as commit_span:
                updates, fields, service = _commit_update_group(store, pool,
                                                                group)
                finish = h.close + service
                commit_span.end_at(finish)
            wall = time.perf_counter() - t0
            c_riders.inc(len(riders))
            c_commits.inc()
            h_held.observe(h.close - h.start)
            if tracer is not None:
                tracer.emit("hold", cat="task", t0=h.start, t1=h.close,
                            worker=h.worker, qid=leader.qid,
                            graph=leader.graph, riders=len(riders))
            jot("commit", qid=leader.qid, graph=leader.graph,
                riders=rider_qids,
                versions=[u.version.version for u in updates],
                digest=updates[-1].digest, finish=finish)
            if cfg.adaptive_window:
                adapted = (min(cfg.coalesce_window_s, window_s * 2)
                           if riders else window_s / 2)
                if adapted != window_s:
                    window_s = adapted
                    jot("window_adapt", qid=leader.qid,
                        graph=leader.graph, window_s=window_s)
            h.task.resume(Committed(
                updates=tuple(updates), fields=fields, start=h.start,
                commit_at=h.close, finish=finish, service_s=service,
                wall_s=wall, worker=h.worker))
            # The commit occupies the leader's worker for the resync's
            # simulated time; riders retire with it.
            running.append(_Inflight(h.task, finish, h.worker, None))

        def retire(r: _Inflight) -> None:
            task = r.task
            if not task.done:  # pragma: no cover - structural guard
                raise ConfigError("inflight task retired before completion")
            jot("retire", qid=task.request.qid, worker=r.worker,
                finish=r.finish)
            if task.request.is_update:
                for rec in task.value:
                    rec.deferred = task.deferred or rec.deferred
                    rec.queue_steps = max(rec.queue_steps, task.queue_steps)
                update_records.extend(task.value)
            else:
                rec = task.value
                rec.deferred = task.deferred
                rec.queue_steps = task.queue_steps
                records.append(rec)
                locks.discard(task.request.session_key)
                pool.unpin(task.request.session_key)
            free_workers.append(r.worker)
            free_workers.sort()

        def dispatchable() -> list[Task]:
            """Fence-eligible waiting tasks whose resources are free."""
            eligible = eligible_requests([t.request for t in waiting],
                                         inflight=inflight_requests())
            by_qid = {t.request.qid: t for t in waiting}
            out = []
            for req in eligible:
                task = by_qid[req.qid]
                if req.is_update:
                    out.append(task)
                    continue
                if req.session_key in locks:
                    continue
                if not pool.can_admit(req.session_key):
                    continue
                out.append(task)
            return out

        def dispatch() -> bool:
            """Start runnable tasks while workers are free."""
            nonlocal clock, last_key
            started = False
            while free_workers:
                ready = dispatchable()
                if not ready:
                    break
                c_decisions.inc()
                starved = [t for t in ready
                           if t.queue_steps >= cfg.starvation_limit]
                if starved:
                    # Fairness override: a request passed over too many
                    # times dispatches before any policy preference.
                    task = min(starved,
                               key=lambda t: arrival_order(t.request))
                else:
                    by_qid = {t.request.qid: t for t in ready}
                    picked = scheduler.pick([t.request for t in ready],
                                            last_key, pool)
                    task = by_qid[picked.qid]
                last_key = task.request.session_key
                for other in ready:
                    if other is not task:
                        other.queue_steps += 1
                c_queue_steps.inc(len(ready) - 1)
                if starved:
                    c_starved.inc()
                waiting.remove(task)
                worker = free_workers.pop(0)
                req = task.request
                jot("dispatch", qid=req.qid, graph=req.graph,
                    is_update=req.is_update, worker=worker,
                    starved=bool(starved), eligible=len(ready),
                    effect=effect_name(task.effect))
                tick(clock)
                if req.is_update:
                    if not isinstance(task.effect, Hold):  # pragma: no cover
                        raise ConfigError("update task must hold first")
                    # Window close: bounded by the adaptive window and
                    # by the leader's own deadline — a hold never pushes
                    # the commit past arrival + slo_update_s.
                    deadline = req.arrival + cfg.slo_update_s
                    planned = clock + max(0.0, min(window_s,
                                                   deadline - clock))
                    close = planned
                    # An already-waiting query on the graph means no
                    # rider can be absorbed ahead of it: commit now.
                    if any(not t.request.is_update
                           and t.request.graph == req.graph
                           for t in waiting + deferred):
                        close = clock
                    c_windows.inc()
                    jot("window_open", qid=req.qid, graph=req.graph,
                        close=close, window_s=window_s)
                    h = _Holding(task, close, worker, clock,
                                 planned=planned)
                    holding.append(h)
                    if close <= clock:
                        holding.remove(h)
                        close_window(h)
                else:
                    if not isinstance(task.effect, Acquire):  # pragma: no cover
                        raise ConfigError("query task must acquire first")
                    t0 = time.perf_counter()
                    session, built = pool.acquire(req.session_key)
                    pool.pin(req.session_key)
                    locks.add(req.session_key)
                    task.resume((session, built))
                    if not isinstance(task.effect, Run):  # pragma: no cover
                        raise ConfigError("query task must run after acquire")
                    result = session.run(req.kernel, keep_cache=True)
                    wall = time.perf_counter() - t0
                    version = store.version(req.graph).version
                    finish = clock + float(result.time)
                    if tracer is not None:
                        tracer.emit("run", cat="task", t0=clock, t1=finish,
                                    worker=worker, qid=req.qid,
                                    graph=req.graph, kernel=req.kernel,
                                    version=version,
                                    warm=bool(result.warm_cache),
                                    wall_s=wall)
                    task.resume(Executed(
                        result=result, version=version, start=clock,
                        finish=finish, wall_s=wall, worker=worker,
                        built_session=built))
                    running.append(_Inflight(task, finish, worker, None))
                started = True
            return started

        with activate(tracer), \
                SessionPool(store, cfg.session_config,
                            capacity=cfg.pool_capacity,
                            policy=cfg.pool_policy) as pool:
            while pending or waiting or deferred or running or holding:
                # Fixpoint at the current clock: admissions can unblock
                # dispatches, completions free workers and locks, closed
                # windows turn into commits.
                progress = True
                while progress:
                    progress = admit()
                    due_runs = sorted(
                        (r for r in running if r.finish <= clock),
                        key=lambda r: (r.finish, r.task.request.qid))
                    for r in due_runs:
                        running.remove(r)
                        retire(r)
                        progress = True
                    due_holds = sorted(
                        (h for h in holding if h.close <= clock),
                        key=lambda h: (h.close, h.task.request.qid))
                    for h in due_holds:
                        holding.remove(h)
                        close_window(h)
                        progress = True
                    progress = dispatch() or progress
                if not (pending or waiting or deferred or running
                        or holding):
                    break
                # Advance to the next event on the simulated clock.
                horizon = [r.finish for r in running]
                horizon += [h.close for h in holding]
                if pending:
                    horizon.append(pending[0].arrival)
                if not horizon:  # pragma: no cover - structural guard
                    # Unreachable: the globally earliest waiting request
                    # is always fence-eligible and, with no task in
                    # flight, all locks and workers are free.
                    raise ConfigError("cooperative scheduler deadlock")
                clock = max(clock, min(horizon))
                tick(clock)
            pool_stats = pool.stats.as_dict()

        wall_clock = time.perf_counter() - t_run
        records.sort(key=lambda r: r.qid)
        update_records.sort(key=lambda r: r.qid)
        rejected.sort(key=lambda r: r.qid)
        outcome = AsyncServeOutcome(
            scheduler=scheduler.name, records=records,
            pool_stats=pool_stats, wall_clock_s=wall_clock,
            update_records=update_records,
            graph_versions={name: (store.version(name).version,
                                   store.digest(name))
                            for name in store.names()},
            rejected=rejected, workers=cfg.workers,
            metrics=registry.snapshot())
        aggs = summarize(records, pool_stats, wall_clock,
                         update_records, int(c_riders.value))
        aggs.update(concurrency_profile(records, update_records))
        aggs["n_rejected"] = len(rejected)
        aggs["n_deferred"] = int(sum(r.deferred for r in records)
                                 + sum(u.deferred for u in update_records
                                       if not u.coalesced))
        if records:
            aggs["query_slo_attainment"] = float(
                sum(r.latency <= cfg.slo_query_s for r in records)
                / len(records))
        outcome.aggregates = aggs
        return outcome
