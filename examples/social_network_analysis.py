#!/usr/bin/env python
"""Community structure analysis with LCC (the paper's motivating use case).

LCC "is used to detect communities in, e.g., social networks,
distinguishing between vertices that are central to the cluster from
others on its frontier" (paper Section I).  This example builds an
ego-network graph (Facebook-circles style), computes LCC on a simulated
cluster, and separates core members from frontier/bridge vertices.

    python examples/social_network_analysis.py
"""

import numpy as np

from repro.core import CacheSpec, LCCConfig, compute_lcc
from repro.graph import ego_circles


def classify(lcc: np.ndarray, degrees: np.ndarray) -> dict[str, np.ndarray]:
    """Heuristic roles from (LCC, degree) as in clustering-based detection."""
    active = degrees >= 2
    hi_lcc = lcc >= 0.4
    hi_deg = degrees >= np.percentile(degrees[active], 90)
    return {
        "community core (high LCC)": np.where(active & hi_lcc & ~hi_deg)[0],
        "hubs / egos (high degree, lower LCC)": np.where(active & hi_deg & ~hi_lcc)[0],
        "frontier (low LCC, low degree)": np.where(active & ~hi_lcc & ~hi_deg)[0],
        "dense hubs (both high)": np.where(active & hi_deg & hi_lcc)[0],
    }


def main() -> None:
    graph = ego_circles(n_egos=6, circle_size=25, n_circles_per_ego=6, seed=11)
    print(f"social graph: |V|={graph.n:,} |E|={graph.m:,}")

    cfg = LCCConfig(nranks=8, threads=12,
                    cache=CacheSpec.paper_split(2 * graph.nbytes, graph.n,
                                                score="degree"))
    result = compute_lcc(graph, cfg)
    lcc = result.lcc
    degrees = graph.degrees()

    print(f"simulated 8-node run: {result.time * 1e3:.1f} ms, "
          f"{result.global_triangles:,} triangles\n")
    for role, members in classify(lcc, degrees).items():
        if members.size == 0:
            continue
        sample = ", ".join(map(str, members[:6]))
        print(f"{role:40s} {members.size:5d} vertices  (e.g. {sample})")

    # Ego vertices connect many circles: high degree, mediocre LCC.
    egos = np.argsort(-degrees)[:6]
    print("\ntop-degree vertices (expected: the egos):")
    for v in egos:
        print(f"  vertex {v:5d}  degree {degrees[v]:4d}  LCC {lcc[v]:.3f}")


if __name__ == "__main__":
    main()
