"""The initial graph distribution phase (paper Figure 3, step 1).

"Reading graph chunk from disk & 1D partitioning": in the paper every node
reads a contiguous chunk of the edge list and exchanges vertices so each
rank ends up with its 1D partition, before the (timed) LCC computation
starts.  The paper's measurements exclude this phase; we implement it
anyway so the full pipeline exists, and report its (simulated) cost
separately — useful for the DistTC comparison, whose *precompute* phase is
the analogous but much heavier step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE
from repro.graph.distributed import DistributedCSR
from repro.graph.partition import BlockPartition1D, Partition
from repro.runtime.context import SimContext
from repro.runtime.engine import Engine, RunOutcome
from repro.runtime.window import Window
from repro.utils.errors import PartitionError


@dataclass
class ExchangeResult:
    """Outcome of the distribution phase."""

    dist: DistributedCSR
    setup_time: float
    setup_outcome: RunOutcome
    bytes_exchanged: int


def exchange_graph(graph: CSRGraph, engine: Engine,
                   partition: Partition | None = None) -> ExchangeResult:
    """Distribute ``graph`` by simulating the vertex-exchange phase.

    Every rank starts with a contiguous chunk of the directed edge list
    (its "disk chunk"), sends each edge to the owner of its source vertex
    with one alltoallv, and builds its local CSR from what it receives.
    The engine's rank clocks after this call reflect the setup cost; the
    caller typically resets or reports them separately, as the paper does.
    """
    part = partition or BlockPartition1D(graph.n, engine.nranks)
    if part.n != graph.n:
        raise PartitionError("partition does not match graph")
    edges = graph.edges()
    nranks = engine.nranks
    chunk_bounds = np.linspace(0, edges.shape[0], nranks + 1).astype(np.int64)
    received_parts: list[np.ndarray | None] = [None] * nranks
    exchanged = np.zeros(nranks, dtype=np.int64)

    def rank_fn(ctx: SimContext):
        rank = ctx.rank
        chunk = edges[chunk_bounds[rank]:chunk_bounds[rank + 1]]
        owners = part.owners(chunk[:, 0])
        payloads = []
        nbytes = []
        for dest in range(nranks):
            mine = chunk[owners == dest]
            payloads.append(mine)
            nbytes.append(int(mine.nbytes))
        exchanged[rank] = sum(nbytes) - nbytes[rank]
        received = yield ctx.alltoallv(payloads, nbytes)
        mine = (np.concatenate([r for r in received if r.shape[0]])
                if any(r.shape[0] for r in received)
                else np.empty((0, 2), dtype=np.int64))
        received_parts[rank] = mine
        # Local CSR build cost: a sort over the received edges.
        m_local = mine.shape[0]
        if m_local:
            ctx.compute(ctx.compute_model.edge_overhead * m_local)
        return m_local

    outcome = engine.run(rank_fn)

    # Build per-rank CSR arrays from what each rank received and verify the
    # exchange delivered exactly the partition split.
    offsets_parts: list[np.ndarray] = []
    adjacency_parts: list[np.ndarray] = []
    for rank in range(nranks):
        mine = received_parts[rank]
        vs = part.local_vertices(rank)
        index_of = {int(v): i for i, v in enumerate(vs)}
        counts = np.zeros(vs.shape[0], dtype=np.int64)
        for u in mine[:, 0]:
            counts[index_of[int(u)]] += 1
        offsets_local = np.zeros(vs.shape[0] + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=offsets_local[1:])
        adj = np.empty(mine.shape[0], dtype=VERTEX_DTYPE)
        cursor = offsets_local[:-1].copy()
        for u, v in mine:
            li = index_of[int(u)]
            adj[cursor[li]] = v
            cursor[li] += 1
        # Sort each list (the chunks arrive unordered).
        for li in range(vs.shape[0]):
            adj[offsets_local[li]:offsets_local[li + 1]].sort()
        offsets_parts.append(offsets_local)
        adjacency_parts.append(adj)

    dist = DistributedCSR.__new__(DistributedCSR)
    dist.graph = graph
    dist.partition = part
    dist.engine = engine
    dist.w_offsets = engine.windows.add(Window("offsets", offsets_parts))
    dist.w_adj = engine.windows.add(Window("adjacencies", adjacency_parts))
    dist._local_vertices = [part.local_vertices(r) for r in range(nranks)]

    return ExchangeResult(
        dist=dist,
        setup_time=outcome.time,
        setup_outcome=outcome,
        bytes_exchanged=int(exchanged.sum()),
    )
