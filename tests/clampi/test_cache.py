"""Tests for the CLaMPI cache proper."""

import numpy as np
import pytest

from repro.clampi.cache import ClampiCache, ClampiConfig, ConsistencyMode
from repro.clampi.scores import AppScorePolicy, LRUScorePolicy
from repro.runtime.window import Window
from repro.utils.errors import CacheError


def make_window(n=256):
    return Window("adj", [np.arange(n, dtype=np.int64),
                          np.arange(1000, 1000 + n, dtype=np.int64)])


def make_cache(capacity=4096, nslots=64, window=None, **kw):
    win = window or make_window()
    win.lock_all(0)
    cfg = ClampiConfig(capacity_bytes=capacity, nslots=nslots, **kw)
    return ClampiCache(win, 0, cfg), win


class TestHitMiss:
    def test_first_access_is_compulsory_miss(self):
        cache, _ = make_cache()
        data, dt, hit = cache.access(1, 0, 4)
        np.testing.assert_array_equal(data, [1000, 1001, 1002, 1003])
        assert not hit
        assert cache.stats.misses == 1
        assert cache.stats.compulsory_misses == 1

    def test_repeat_access_hits(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        data, dt_hit, hit = cache.access(1, 0, 4)
        assert hit
        np.testing.assert_array_equal(data, [1000, 1001, 1002, 1003])
        assert cache.stats.hits == 1

    def test_hit_is_much_cheaper_than_miss(self):
        cache, _ = make_cache()
        _, dt_miss, _ = cache.access(1, 0, 16)
        _, dt_hit, _ = cache.access(1, 0, 16)
        assert dt_hit * 10 < dt_miss

    def test_exact_match_semantics(self):
        # A different (offset, count) is a different entry, as in CLaMPI.
        cache, _ = make_cache()
        cache.access(1, 0, 8)
        _, _, hit = cache.access(1, 0, 4)
        assert not hit

    def test_served_data_identical_to_window(self):
        cache, win = make_cache()
        for _ in range(3):
            data, _, _ = cache.access(1, 5, 7)
            np.testing.assert_array_equal(data, win.local_part(1)[5:12])

    def test_miss_after_flush_not_compulsory(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        cache.flush()
        _, _, hit = cache.access(1, 0, 4)
        assert not hit
        assert cache.stats.misses == 2
        assert cache.stats.compulsory_misses == 1


class TestEviction:
    def test_capacity_eviction_under_pressure(self):
        # 8-byte items; capacity 10 entries of 4 elements = 32B each.
        cache, _ = make_cache(capacity=320, nslots=256)
        for off in range(0, 80, 4):
            cache.access(1, off, 4)
        assert cache.stats.capacity_evictions > 0
        cache.check_invariants()
        assert cache.used_bytes <= 320

    def test_lru_evicts_oldest(self):
        cache, _ = make_cache(capacity=64, nslots=64,
                              score_policy=LRUScorePolicy(),
                              eviction_sample=1000)
        cache.access(1, 0, 4)    # 32 B
        cache.access(1, 4, 4)    # 32 B -> full
        cache.access(1, 0, 4)    # refresh entry 0
        cache.access(1, 8, 4)    # must evict offset-4 entry (older)
        _, _, hit0 = cache.access(1, 0, 4)
        assert hit0
        _, _, hit4 = cache.access(1, 4, 4)
        assert not hit4

    def test_oversized_entry_not_cached(self):
        cache, _ = make_cache(capacity=16)
        cache.access(1, 0, 100)  # 800 B > 16 B capacity
        assert cache.stats.insert_failures == 1
        assert len(cache) == 0

    def test_app_score_protects_high_degree(self):
        # Low-score newcomers must not evict a high-score resident.
        win = make_window(512)
        win.lock_all(0)
        cfg = ClampiConfig(
            capacity_bytes=400, nslots=256,
            score_policy=AppScorePolicy(),
            app_score_fn=lambda t, o, c, d: float(c),  # score = entry length
            eviction_sample=1000,
        )
        cache = ClampiCache(win, 0, cfg)
        cache.access(1, 0, 40)   # 320 B, score 40 -> resident hero
        for off in range(40, 80, 2):
            cache.access(1, off, 2)   # small, low-score entries
        _, _, hit = cache.access(1, 0, 40)
        assert hit, "high-score entry was evicted by low-score newcomers"
        # Pressure was real: the low-score entries churned among themselves.
        assert cache.stats.capacity_evictions > 0
        for e in cache.entries():
            assert e.key == (1, 0, 40) or e.nbytes == 16

    def test_default_policy_allows_eviction(self):
        cache, _ = make_cache(capacity=64, nslots=256, eviction_sample=1000)
        cache.access(1, 0, 8)   # fills cache (64 B)
        cache.access(1, 8, 8)   # must evict
        assert cache.stats.capacity_evictions == 1


class TestModes:
    def test_transparent_flushes_on_epoch_close(self):
        cache, _ = make_cache(mode=ConsistencyMode.TRANSPARENT)
        cache.access(1, 0, 4)
        cache.on_epoch_close()
        assert len(cache) == 0
        assert cache.stats.flushes == 1

    def test_always_cache_survives_epoch_close(self):
        cache, _ = make_cache(mode=ConsistencyMode.ALWAYS_CACHE)
        cache.access(1, 0, 4)
        cache.on_epoch_close()
        assert len(cache) == 1

    def test_user_defined_flushes_only_manually(self):
        cache, _ = make_cache(mode=ConsistencyMode.USER_DEFINED)
        cache.access(1, 0, 4)
        cache.on_epoch_close()
        assert len(cache) == 1
        cache.flush()
        assert len(cache) == 0


class TestConfigValidation:
    def test_bad_capacity(self):
        with pytest.raises(CacheError):
            ClampiConfig(capacity_bytes=0)

    def test_bad_nslots(self):
        with pytest.raises(CacheError):
            ClampiConfig(capacity_bytes=10, nslots=0)

    def test_app_policy_requires_score_fn(self):
        with pytest.raises(CacheError):
            ClampiConfig(capacity_bytes=10, score_policy=AppScorePolicy())


class TestResize:
    def test_resize_flushes(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        cache.resize(nslots=128)
        assert len(cache) == 0
        assert cache.stats.adaptive_resizes == 1
        assert cache.config.nslots == 128
        # Still works after resize.
        _, _, hit = cache.access(1, 0, 4)
        assert not hit
        _, _, hit = cache.access(1, 0, 4)
        assert hit

    def test_invariants_after_heavy_use(self):
        rng = np.random.default_rng(3)
        cache, _ = make_cache(capacity=512, nslots=16)
        for _ in range(500):
            off = int(rng.integers(0, 60))
            cnt = int(rng.integers(1, 12))
            cache.access(1, min(off, 255 - cnt), cnt)
        cache.check_invariants()


class TestEvictionDeterminism:
    """Victim sampling must be reproducible across process runs.

    Each cache derives a private ``random.Random`` stream from its config
    seed and rank through :func:`repro.utils.rng.derive_seed`; identical
    configs therefore evict identically, run after run, machine after
    machine (Python pins the Mersenne Twister across versions).
    """

    def _drive(self, cache):
        rng = np.random.default_rng(9)
        for _ in range(400):
            off = int(rng.integers(0, 200))
            cnt = int(rng.integers(1, 10))
            cache.access(1, min(off, 255 - cnt), cnt)

    def test_identical_configs_evict_identically(self):
        a, _ = make_cache(capacity=512, nslots=16)
        b, _ = make_cache(capacity=512, nslots=16)
        self._drive(a)
        self._drive(b)
        assert a.stats.snapshot() == b.stats.snapshot()
        assert sorted(a._key_pos) == sorted(b._key_pos)

    def test_seed_changes_the_sampling_stream(self):
        a, _ = make_cache(capacity=512, nslots=16, seed=1)
        b, _ = make_cache(capacity=512, nslots=16, seed=2)
        assert [a._rng.randrange(1000) for _ in range(8)] != \
            [b._rng.randrange(1000) for _ in range(8)]

    def test_sampling_stream_pinned_across_process_runs(self):
        # Hard-coded expectations: a change to the seed derivation or to
        # the per-instance RNG would silently change every cached
        # experiment, so the exact stream is pinned here.
        from repro.utils.rng import derive_seed

        assert derive_seed(0x5EED, "clampi-evict", 0) == 5924032174864516661
        assert derive_seed(0x5EED, "clampi-evict", 3) == 5924028876329632028
        cache, _ = make_cache()
        assert [cache._rng.randrange(1000) for _ in range(6)] == \
            [535, 263, 983, 884, 258, 755]

    def test_ranks_get_distinct_streams(self):
        win = make_window()
        win.lock_all(0)
        win.lock_all(1)
        cfg = ClampiConfig(capacity_bytes=4096, nslots=64)
        r0 = ClampiCache(win, 0, cfg)
        r1 = ClampiCache(win, 1, cfg)
        assert [r0._rng.randrange(1000) for _ in range(8)] != \
            [r1._rng.randrange(1000) for _ in range(8)]
