"""The consistent-hash ring and the store router bound to it."""

import pytest

from repro.shardstore import HashRing, ShardRouter
from repro.utils.errors import ConfigError

KEYS = [(f"g{i}", (("method", "ssi"),) if i % 2 else ()) for i in range(200)]


class TestHashRing:
    def test_placement_is_process_independent(self):
        """repr()-based hashing, not builtin hash(): two rings built the
        same way agree key by key (and would across interpreter runs)."""
        a, b = HashRing(["x", "y", "z"]), HashRing(["z", "y", "x"])
        assert a.table(KEYS) == b.table(KEYS)

    def test_owner_is_a_member(self):
        ring = HashRing(["x", "y", "z"])
        assert set(ring.table(KEYS).values()) <= {"x", "y", "z"}

    def test_every_node_owns_something(self):
        ring = HashRing(["x", "y", "z"])
        assert set(ring.table(KEYS).values()) == {"x", "y", "z"}

    def test_membership_protocol(self):
        ring = HashRing(["x"])
        assert "x" in ring and len(ring) == 1
        ring.add("y")
        assert ring.nodes() == ["x", "y"]
        ring.remove("x")
        assert "x" not in ring and ring.nodes() == ["y"]

    def test_errors(self):
        ring = HashRing()
        with pytest.raises(ConfigError, match="no nodes"):
            ring.owner("k")
        with pytest.raises(ConfigError, match="non-empty name"):
            ring.add("")
        ring.add("x")
        with pytest.raises(ConfigError, match="already on the ring"):
            ring.add("x")
        with pytest.raises(ConfigError, match="not on the ring"):
            ring.remove("y")
        with pytest.raises(ConfigError, match=">= 1 vnode"):
            HashRing(vnodes=0)


class TestShardRouter:
    def test_routes_to_the_owning_store(self):
        stores = {"r0": object(), "r1": object(), "r2": object()}
        router = ShardRouter(dict(stores))
        for key in KEYS[:40]:
            rid = router.route(key)
            assert router.store_for(key) is stores[rid]

    def test_membership_is_liveness(self):
        stores = {"r0": object(), "r1": object()}
        router = ShardRouter(dict(stores))
        gone = router.remove_store("r0")
        assert gone is stores["r0"]
        assert router.store_ids() == ["r1"]
        assert "r0" not in router
        assert all(router.route(k) == "r1" for k in KEYS[:20])
        router.add_store("r0", stores["r0"])
        assert len(router) == 2

    def test_get_unknown_store(self):
        router = ShardRouter({"r0": object()})
        assert router.get("r0") is not None
        with pytest.raises(ConfigError, match="not routed"):
            router.get("r9")
