"""Tests for RNG management."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_seed_determinism(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_default_seed(self):
        assert make_rng(None).integers(0, 1 << 30) == make_rng(None).integers(0, 1 << 30)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(1, 8)) == 8

    def test_spawn_independent_streams(self):
        rngs = spawn_rngs(1, 4)
        draws = [r.integers(0, 1 << 30) for r in rngs]
        assert len(set(draws)) > 1

    def test_spawn_deterministic(self):
        a = [r.integers(0, 1 << 30) for r in spawn_rngs(2, 4)]
        b = [r.integers(0, 1 << 30) for r in spawn_rngs(2, 4)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "fig9") != derive_seed(1, "fig10")

    def test_base_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_in_range(self):
        s = derive_seed(123456789, "exp", 64)
        assert 0 <= s < (1 << 63)

    def test_none_uses_default(self):
        assert derive_seed(None, "x") == derive_seed(None, "x")
