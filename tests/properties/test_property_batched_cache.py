"""Property-based equivalence of ``access_batch`` and scalar ``access``.

Twin caches (identical config, seed and window) are driven with the same
random access stream — one through :meth:`ClampiCache.access_batch` in
chunks, the other one access at a time.  Whatever the geometry, policy and
stream, they must agree on every hit/miss verdict, every duration, the
accumulated timing, the statistics, and both must pass
``check_invariants()`` at every chunk boundary.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clampi.cache import BatchStream, ClampiCache, ClampiConfig
from repro.clampi.scores import AppScorePolicy, DefaultScorePolicy, LRUScorePolicy
from repro.runtime.window import Window

N = 96

accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1),       # target rank
              st.integers(min_value=0, max_value=N - 9),   # offset
              st.integers(min_value=1, max_value=8)),      # count
    min_size=1, max_size=150,
)

geometries = st.tuples(
    st.integers(min_value=48, max_value=1024),   # capacity bytes (tight)
    st.integers(min_value=2, max_value=48),      # hash slots
)

policies = st.sampled_from(["default", "lru", "degree"])

chunk_sizes = st.integers(min_value=1, max_value=40)


def make_window() -> Window:
    return Window("adj", [np.arange(N, dtype=np.int64),
                          np.arange(5000, 5000 + N, dtype=np.int64)])


def make_cache(window: Window, capacity: int, nslots: int,
               policy_name: str) -> ClampiCache:
    if policy_name == "degree":
        cfg = ClampiConfig(capacity_bytes=capacity, nslots=nslots,
                           score_policy=AppScorePolicy(),
                           app_score_fn=lambda t, o, c, d: float(c))
    else:
        policy = (DefaultScorePolicy() if policy_name == "default"
                  else LRUScorePolicy())
        cfg = ClampiConfig(capacity_bytes=capacity, nslots=nslots,
                           score_policy=policy)
    return ClampiCache(window, 0, cfg)


@given(accesses, geometries, policies, chunk_sizes)
@settings(max_examples=100, deadline=None)
def test_batch_equals_scalar(stream, geometry, policy, chunk):
    capacity, nslots = geometry
    window = make_window()
    window.lock_all(0)
    batched = make_cache(window, capacity, nslots, policy)
    scalar = make_cache(window, capacity, nslots, policy)

    keys = np.array(stream, dtype=np.int64)
    for lo in range(0, keys.shape[0], chunk):
        part = keys[lo:lo + chunk]
        durations, hits = batched.access_batch(part[:, 0], part[:, 1],
                                               part[:, 2])
        for i, (t, o, c) in enumerate(part):
            _, dt, hit = scalar.access(int(t), int(o), int(c))
            assert hit == bool(hits[i]), (lo + i, (t, o, c))
            assert dt == durations[i], (lo + i, (t, o, c))
        # Timing sums and statistics agree at every chunk boundary...
        assert batched.stats.mgmt_time == scalar.stats.mgmt_time
        assert batched.stats.snapshot() == scalar.stats.snapshot()
        assert len(batched) == len(scalar)
        assert batched.used_bytes == scalar.used_bytes
        # ...and both caches stay internally consistent.
        batched.check_invariants()
        scalar.check_invariants()

    # Entry metadata (drives future evictions) must have tracked too.
    for key in sorted(batched._key_pos):
        be = batched.index.lookup(key)
        se = scalar.index.lookup(key)
        assert se is not None, key
        assert be.last_access == se.last_access
        assert be.n_accesses == se.n_accesses


@given(accesses, geometries, policies)
@settings(max_examples=40, deadline=None)
def test_prebuilt_stream_replay(stream, geometry, policy):
    """A shared BatchStream replayed twice matches two scalar passes."""
    capacity, nslots = geometry
    window = make_window()
    window.lock_all(0)
    batched = make_cache(window, capacity, nslots, policy)
    scalar = make_cache(window, capacity, nslots, policy)

    keys = np.array(stream, dtype=np.int64)
    prepared = BatchStream(keys[:, 0], keys[:, 1], keys[:, 2])
    for _ in range(2):  # second pass reuses the cache's per-stream memo
        durations, hits = batched.access_batch(stream=prepared)
        for i, (t, o, c) in enumerate(keys):
            _, dt, hit = scalar.access(int(t), int(o), int(c))
            assert hit == bool(hits[i])
            assert dt == durations[i]
        assert batched.stats.snapshot() == scalar.stats.snapshot()
        batched.check_invariants()


def test_batch_rejects_bad_shapes():
    import pytest

    from repro.utils.errors import CacheError

    window = make_window()
    window.lock_all(0)
    cache = make_cache(window, 256, 8, "default")
    with pytest.raises(CacheError):
        cache.access_batch(np.zeros(3, dtype=np.int64),
                           np.zeros(2, dtype=np.int64),
                           np.zeros(3, dtype=np.int64))


def test_empty_batch():
    window = make_window()
    window.lock_all(0)
    cache = make_cache(window, 256, 8, "default")
    durations, hits = cache.access_batch(np.zeros(0, dtype=np.int64),
                                         np.zeros(0, dtype=np.int64),
                                         np.zeros(0, dtype=np.int64))
    assert durations.shape == hits.shape == (0,)
    assert cache.stats.accesses == 0
