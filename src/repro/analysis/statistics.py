"""Measurement methodology: medians and confidence intervals.

The paper follows scientific-benchmarking practice (LibLSB, Hoefler &
Belli): shared-memory runs repeat "until the 5% of the median was within
the 95% CI"; distributed runs report "the median of the longest-running
node ... with the corresponding 95% CI" (Section IV-A).

Our simulator is deterministic for a fixed seed, so the analogue of a
repetition is a different *seed* (new graph sample / relabeling).  This
module provides the same estimators:

* :func:`median_ci` — nonparametric order-statistic 95% CI of the median;
* :func:`repeat_until_tight` — the paper's adaptive stopping rule;
* :func:`repeat_over_seeds` — run an experiment across seeds and summarize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.stats as stats


@dataclass(frozen=True)
class MedianCI:
    """A median with a (lo, hi) confidence interval."""

    median: float
    lo: float
    hi: float
    n: int
    confidence: float = 0.95

    @property
    def half_width_fraction(self) -> float:
        """CI half-width as a fraction of the median (the paper's 5% rule)."""
        if self.median == 0:
            return 0.0
        return max(self.hi - self.median, self.median - self.lo) / abs(self.median)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (f"{self.median:.6g} "
                f"[{self.lo:.6g}, {self.hi:.6g}] (n={self.n})")


def median_ci(samples: Sequence[float], confidence: float = 0.95) -> MedianCI:
    """Nonparametric CI of the median via binomial order statistics.

    For n samples the rank interval [l, u] such that
    ``P(x_(l) <= median <= x_(u)) >= confidence`` comes from the
    Binomial(n, 1/2) distribution; this is the standard distribution-free
    median CI (and what LibLSB reports).
    """
    xs = np.sort(np.asarray(list(samples), dtype=np.float64))
    n = xs.shape[0]
    if n == 0:
        raise ValueError("need at least one sample")
    med = float(np.median(xs))
    if n == 1:
        return MedianCI(med, med, med, 1, confidence)
    # Smallest symmetric rank band with >= confidence coverage.
    lo_idx, hi_idx = 0, n - 1
    dist = stats.binom(n, 0.5)
    for k in range(n // 2 + 1):
        cover = dist.cdf(n - 1 - k) - dist.cdf(k - 1)
        if cover >= confidence:
            lo_idx, hi_idx = k, n - 1 - k
        else:
            break
    return MedianCI(med, float(xs[lo_idx]), float(xs[hi_idx]), n, confidence)


def repeat_until_tight(
    sample_fn: Callable[[int], float],
    *,
    rel_tolerance: float = 0.05,
    confidence: float = 0.95,
    min_samples: int = 5,
    max_samples: int = 100,
) -> MedianCI:
    """The paper's stopping rule: repeat until the CI is within
    ``rel_tolerance`` of the median (or ``max_samples`` is reached).

    ``sample_fn(i)`` produces the i-th measurement (e.g. a run with seed
    ``i``).
    """
    samples: list[float] = []
    for i in range(max_samples):
        samples.append(float(sample_fn(i)))
        if len(samples) >= min_samples:
            ci = median_ci(samples, confidence)
            if ci.half_width_fraction <= rel_tolerance:
                return ci
    return median_ci(samples, confidence)


def repeat_over_seeds(
    run_fn: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> MedianCI:
    """Evaluate ``run_fn(seed)`` for every seed and summarize."""
    if not seeds:
        raise ValueError("need at least one seed")
    return median_ci([run_fn(int(s)) for s in seeds], confidence)
