"""Tests for the local reference implementations, cross-checked with
networkx (an entirely independent implementation)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.local import (
    lcc_from_triplets,
    lcc_local,
    triangle_count_local,
    triangles_per_vertex_local,
    triangles_per_vertex_matrix,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    ring_of_cliques,
    rmat,
    star_graph,
)

from tests.helpers import make_graph_suite


def to_nx(graph: CSRGraph) -> nx.Graph:
    g = nx.DiGraph() if graph.directed else nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(map(tuple, graph.edges()))
    return g


class TestAgainstNetworkx:
    @pytest.mark.parametrize("idx", range(6))
    def test_triangle_count(self, idx):
        g = make_graph_suite()[idx]
        expected = sum(nx.triangles(to_nx(g)).values()) // 3
        assert triangle_count_local(g) == expected

    @pytest.mark.parametrize("idx", range(6))
    def test_lcc(self, idx):
        g = make_graph_suite()[idx]
        expected = nx.clustering(to_nx(g))
        ours = lcc_local(g)
        for v in range(g.n):
            assert ours[v] == pytest.approx(expected[v], abs=1e-12), f"v={v}"

    def test_lcc_directed_transitivity(self):
        # Directed Eq. 1: fraction of ordered neighbour pairs (j, k) of i's
        # out-neighbourhood with edge j->k present.
        g = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)], directed=True)
        scores = lcc_local(g)
        # adj+(0) = {1, 2}; pairs (1,2),(2,1); only 1->2 exists: 1/2.
        assert scores[0] == pytest.approx(0.5)
        assert scores[1] == 0.0


class TestPathsAgree:
    @pytest.mark.parametrize("idx", range(6))
    def test_matrix_equals_kernels(self, idx):
        g = make_graph_suite()[idx]
        np.testing.assert_array_equal(
            triangles_per_vertex_matrix(g),
            triangles_per_vertex_local(g, "hybrid"),
        )

    def test_all_kernel_methods_agree(self):
        g = rmat(7, 8, seed=1)
        ref = triangles_per_vertex_local(g, "ssi")
        np.testing.assert_array_equal(ref, triangles_per_vertex_local(g, "binary"))
        np.testing.assert_array_equal(ref, triangles_per_vertex_local(g, "hybrid"))


class TestKnownValues:
    def test_complete_graph(self):
        g = complete_graph(7)
        assert triangle_count_local(g) == 35
        np.testing.assert_allclose(lcc_local(g), 1.0)

    def test_star_graph(self):
        g = star_graph(8)
        assert triangle_count_local(g) == 0
        np.testing.assert_allclose(lcc_local(g), 0.0)

    def test_ring_of_cliques(self):
        assert triangle_count_local(ring_of_cliques(6, 5)) == 60

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], n=4)
        assert triangle_count_local(g) == 0
        np.testing.assert_allclose(lcc_local(g), 0.0)

    def test_lcc_from_triplets_degree_guard(self):
        g = CSRGraph.from_edges([(0, 1)], n=3)
        scores = lcc_from_triplets(g, np.zeros(3, dtype=np.int64))
        np.testing.assert_allclose(scores, 0.0)

    def test_directed_transitive_triads(self):
        # Cycle 0->1->2->0 has no transitive triad; adding 0->2 creates one.
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
        assert triangle_count_local(g) == 0
        g2 = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)],
                                 directed=True)
        assert triangle_count_local(g2) == 1
