"""Figure 4: data reuse across degree distributions (8 processes).

The paper shows the share of remote reads that target the highest-degree
vertices for four datasets: a uniform graph (top-10% share 11.7%) versus
power-law graphs (R-MAT S21 EF16: 91.9%, Orkut: 42.5%, LiveJournal:
57.4%).
"""

from __future__ import annotations

from repro.analysis.reuse import reuse_curve, top_degree_read_share
from repro.analysis.tables import Table
from repro.graph.datasets import load_dataset

#: (dataset, paper's top-10% remote-read share).
PAPER_SHARES = [
    ("uniform", 0.117),
    ("rmat-s21-ef16", 0.919),
    ("orkut", 0.425),
    ("livejournal", 0.574),
]


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    rows = PAPER_SHARES[:2] if fast else PAPER_SHARES
    table = Table(
        ["graph", "top-10% share (ours)", "top-10% share (paper)",
         "top-1% share", "reads to reach 50%"],
        title="Figure 4: remote-read concentration on 8 ranks",
    )
    tables = [table]
    for name, paper_share in rows:
        g = load_dataset(name, scale=scale, seed=seed)
        ours = top_degree_read_share(g, 8, 0.10)
        top1 = top_degree_read_share(g, 8, 0.01)
        frac, cum = reuse_curve(g, 8)
        # Smallest vertex fraction capturing half of all remote reads.
        import numpy as np

        idx = int(np.searchsorted(cum, 0.5))
        half_frac = float(frac[min(idx, frac.shape[0] - 1)])
        table.add_row(name, f"{ours:.1%}", f"{paper_share:.1%}",
                      f"{top1:.1%}", f"top {half_frac:.1%} of vertices")
    return tables


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
