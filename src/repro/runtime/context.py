"""Per-rank simulation context: virtual clock + communication primitives.

``SimContext`` is what a rank program sees as "MPI".  It owns the rank's
virtual clock and charges every operation to it:

* ``get``/``put`` — one-sided RMA on a :class:`~repro.runtime.window.Window`
  (optionally intercepted by an attached CLaMPI cache, reproducing the
  paper's Figure 3 flow: the get is first looked up in the cache, and only
  on a miss does the remote access happen);
* ``compute``/``charge_kernel`` — analytic compute costs;
* ``send``/``recv``/``barrier``/``alltoallv`` — *requests* to be yielded to
  the engine (used by the TriC baseline, never by the async algorithm).

Because the paper's algorithm uses passive-target synchronization, a rank's
clock never depends on another rank's progress for RMA: a get completes at
``now + t(s)`` regardless of what the target is doing.  That is precisely
why the async algorithm can be simulated rank-by-rank.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence

import numpy as np

from repro.runtime.compute import ComputeModel
from repro.runtime.network import MemoryModel, NetworkModel
from repro.runtime.requests import (
    AllreduceRequest,
    AlltoallvRequest,
    BarrierRequest,
    RecvRequest,
    SendRequest,
)
from repro.runtime.trace import OpKind, RankTrace
from repro.runtime.window import Window
from repro.utils.errors import SimulationError


class CacheProtocol(Protocol):
    """What a CLaMPI cache must implement to intercept gets.

    ``access`` returns ``(data, duration, hit)``: the bytes served, the
    seconds to charge the initiating rank, and whether it was a cache hit.
    """

    def access(self, target: int, offset: int, count: int) -> tuple[np.ndarray, float, bool]:
        ...  # pragma: no cover - protocol stub

    def on_epoch_close(self) -> None:
        ...  # pragma: no cover - protocol stub


class SimContext:
    """The per-rank handle of a simulated job."""

    def __init__(
        self,
        rank: int,
        nranks: int,
        *,
        network: NetworkModel | None = None,
        memory: MemoryModel | None = None,
        compute: ComputeModel | None = None,
        record_ops: bool = False,
    ):
        if not (0 <= rank < nranks):
            raise SimulationError(f"rank {rank} out of range [0, {nranks})")
        self.rank = rank
        self.nranks = nranks
        self.network = network or NetworkModel.aries()
        self.memory = memory or MemoryModel()
        self.compute_model = compute or ComputeModel()
        self.now: float = 0.0
        self.trace = RankTrace(rank=rank, record_ops=record_ops)
        self._caches: dict[str, CacheProtocol] = {}

    # -- clock -------------------------------------------------------------
    def advance(self, seconds: float) -> None:
        """Advance the local clock; time can only move forward."""
        if seconds < 0:
            raise SimulationError(
                f"rank {self.rank}: attempt to advance clock by {seconds} s"
            )
        self.now += seconds

    def set_time(self, t: float) -> None:
        """Engine hook: jump to an absolute time (collective completion)."""
        if t < self.now - 1e-18:
            raise SimulationError(
                f"rank {self.rank}: clock would go backwards "
                f"({self.now} -> {t})"
            )
        self.now = max(self.now, t)

    # -- compute ------------------------------------------------------------
    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of local computation."""
        self.advance(seconds)
        self.trace.compute(seconds, self.now)

    def charge_kernel(self, method: str, len_a: int, len_b: int) -> float:
        """Charge one intersection-kernel invocation; returns the cost."""
        dt = self.compute_model.kernel_time(method, len_a, len_b)
        self.compute(dt)
        return dt

    # -- cache attachment ------------------------------------------------------
    def attach_cache(self, window: Window, cache: CacheProtocol) -> None:
        """Route this rank's remote gets on ``window`` through ``cache``."""
        self._caches[window.name] = cache

    def detach_cache(self, window: Window) -> None:
        self._caches.pop(window.name, None)

    def cache_for(self, window: Window) -> CacheProtocol | None:
        return self._caches.get(window.name)

    # -- RMA ------------------------------------------------------------------
    def get(self, window: Window, target: int, offset: int, count: int) -> np.ndarray:
        """Blocking one-sided read of ``count`` elements from ``target``.

        Models ``MPI_Get`` + ``MPI_Win_flush``: the call returns the data and
        the clock has advanced by the full transfer time.  Local targets
        bypass the network (a direct memory read, like the paper's local
        adjacency accesses); remote targets go through the attached CLaMPI
        cache when one is present.
        """
        nbytes = window.nbytes_of(count)
        if target == self.rank:
            data = window.local_part(self.rank)[offset:offset + count]
            dt = self.memory.local_read_time(nbytes)
            self.advance(dt)
            self.trace.local_read(window.name, offset, count, nbytes, dt, self.now)
            return data

        cache = self._caches.get(window.name)
        if cache is not None:
            data, dt, hit = cache.access(target, offset, count)
            self.advance(dt)
            if hit:
                self.trace.cache_hit(window.name, target, offset, count,
                                     nbytes, dt, self.now)
            else:
                self.trace.remote_get(window.name, target, offset, count,
                                      nbytes, dt, self.now)
            return data

        data = window.read(self.rank, target, offset, count)
        dt = self.network.get_time(nbytes)
        self.advance(dt)
        self.trace.remote_get(window.name, target, offset, count, nbytes, dt, self.now)
        return data

    def get_nowait(self, window: Window, target: int, offset: int, count: int
                   ) -> tuple[np.ndarray, float]:
        """Issue a get but *return* its duration instead of charging it.

        Used by the double-buffering pipeline in the LCC kernel, which
        overlaps the next edge's communication with the current edge's
        computation and therefore needs to combine the two durations itself
        (``max`` instead of ``+``).  Trace counters are still updated.
        """
        nbytes = window.nbytes_of(count)
        if target == self.rank:
            data = window.local_part(self.rank)[offset:offset + count]
            dt = self.memory.local_read_time(nbytes)
            self.trace.local_read(window.name, offset, count, nbytes, dt, self.now)
            return data, dt
        cache = self._caches.get(window.name)
        if cache is not None:
            data, dt, hit = cache.access(target, offset, count)
            if hit:
                self.trace.cache_hit(window.name, target, offset, count,
                                     nbytes, dt, self.now)
            else:
                self.trace.remote_get(window.name, target, offset, count,
                                      nbytes, dt, self.now)
            return data, dt
        data = window.read(self.rank, target, offset, count)
        dt = self.network.get_time(nbytes)
        self.trace.remote_get(window.name, target, offset, count, nbytes, dt, self.now)
        return data, dt

    def put(self, window: Window, target: int, offset: int, data: np.ndarray) -> None:
        """Blocking one-sided write."""
        arr = np.asarray(data, dtype=window.dtype)
        window.write(self.rank, target, offset, arr)
        nbytes = arr.nbytes
        if target == self.rank:
            dt = self.memory.local_read_time(nbytes)
        else:
            dt = self.network.put_time(nbytes)
        self.advance(dt)
        self.trace.n_puts += 1
        self.trace.comm_time += dt if target != self.rank else 0.0
        self.trace.record(OpKind.PUT, window=window.name, target=target,
                          offset=offset, count=arr.shape[0], nbytes=nbytes,
                          t=self.now)

    # -- two-sided / collectives (yielded to the engine) -------------------------
    def send(self, dest: int, payload: Any, nbytes: int, tag: int = 0) -> SendRequest:
        """Build a send request (``yield`` it from a rank generator)."""
        if not (0 <= dest < self.nranks):
            raise SimulationError(f"send to invalid rank {dest}")
        return SendRequest(dest=dest, payload=payload, nbytes=int(nbytes), tag=tag)

    def recv(self, source: int, tag: int = 0) -> RecvRequest:
        """Build a receive request (``yield`` it from a rank generator)."""
        if not (0 <= source < self.nranks):
            raise SimulationError(f"recv from invalid rank {source}")
        return RecvRequest(source=source, tag=tag)

    def barrier(self) -> BarrierRequest:
        """Build a barrier request."""
        return BarrierRequest()

    def alltoallv(self, payloads: Sequence[Any], nbytes: Sequence[int]) -> AlltoallvRequest:
        """Build an alltoallv request (one payload per destination rank)."""
        if len(payloads) != self.nranks or len(nbytes) != self.nranks:
            raise SimulationError(
                f"alltoallv needs exactly {self.nranks} payloads/sizes, got "
                f"{len(payloads)}/{len(nbytes)}"
            )
        return AlltoallvRequest(payloads=list(payloads),
                                nbytes=[int(b) for b in nbytes])

    def allreduce(self, value: float, nbytes: int = 8) -> AllreduceRequest:
        """Build a sum-allreduce request."""
        return AllreduceRequest(value=value, nbytes=nbytes)
