"""Replica sets: independent application, divergence, evict/re-seed."""

import numpy as np
import pytest

from repro.dynamic.delta import random_update_batch
from repro.graph.generators import powerlaw_configuration
from repro.serve import ServeConfig
from repro.serve.request import QueryRequest, UpdateRequest
from repro.shardstore import ReplicaSet
from repro.utils.errors import ConfigError
from repro.utils.rng import derive_seed


@pytest.fixture()
def catalog():
    return {"g": powerlaw_configuration(90, 500, seed=8, name="g")}


def commit_round(rs, r):
    head = rs.primary.graph("g")
    rs.commit("g", random_update_batch(
        head, n_edges=16, seed=derive_seed(4, "replica-test", r)))


def queries(n, graphs=("g",)):
    return [QueryRequest(arrival=0.05 * i, qid=i, tenant=i % 4,
                        graph=graphs[i % len(graphs)], kernel="lcc",
                        overrides=(("method", "ssi"),) if i % 3 else ())
            for i in range(n)]


class TestConvergence:
    def test_independent_application_converges(self, catalog):
        rs = ReplicaSet(catalog, replicas=3, nshards=2, nranks=4)
        for r in range(3):
            commit_round(rs, r)
        assert rs.verify() == []
        assert rs.divergent() == []

    def test_divergence_detected_and_healed(self, catalog):
        rs = ReplicaSet(catalog, replicas=2, nshards=2, nranks=4)
        commit_round(rs, 0)
        rogue = rs.live_ids()[0]
        # A write that bypassed the set: the replica's history forks.
        rs.replica(rogue).apply("g", random_update_batch(
            rs.replica(rogue).graph("g"), n_edges=4, seed=99))
        assert rs.divergent() == [rogue]
        assert any("digest diverged" in p or "version vector" in p
                   or rogue in p for p in rs.verify())
        assert rs.heal() == [rogue]
        assert rs.verify() == []
        assert rs.reseeds == 1
        # Converged for real: the next commit keeps digests equal.
        commit_round(rs, 1)
        assert rs.verify() == []

    def test_evicted_replica_misses_commits_until_rejoin(self, catalog):
        rs = ReplicaSet(catalog, replicas=2, nshards=2, nranks=4)
        rs.evict("r0")
        assert rs.live_ids() == ["r1"]
        commit_round(rs, 0)
        assert rs.replica("r0").version("g").version == 0
        rs.rejoin("r0")
        assert rs.replica("r0").version("g").version == 1
        assert rs.verify() == []


class TestMembershipErrors:
    def test_unknown_replica(self, catalog):
        rs = ReplicaSet(catalog, replicas=1)
        with pytest.raises(ConfigError, match="unknown replica"):
            rs.replica("r9")

    def test_double_evict_and_rejoin(self, catalog):
        rs = ReplicaSet(catalog, replicas=2)
        rs.evict("r0")
        with pytest.raises(ConfigError, match="already evicted"):
            rs.evict("r0")
        rs.rejoin("r0")
        with pytest.raises(ConfigError, match="already live"):
            rs.rejoin("r0")

    def test_need_one_replica(self, catalog):
        with pytest.raises(ConfigError, match=">= 1 replica"):
            ReplicaSet(catalog, replicas=0)


class TestServeReads:
    CFG = ServeConfig(nranks=4, threads=2, pool_capacity=2)

    def test_digests_are_placement_independent(self, catalog):
        """1 replica vs 3 replicas: different routing, same answers."""
        reqs = queries(18)
        one = ReplicaSet(catalog, replicas=1, nshards=2, nranks=4)
        three = ReplicaSet(catalog, replicas=3, nshards=2, nranks=4)
        out1 = one.serve_reads(reqs, self.CFG)
        out3 = three.serve_reads(reqs, self.CFG)
        assert out1.digests() == out3.digests()
        assert len(out3.records) == len(reqs)
        assert sum(out3.replica_counts.values()) == len(reqs)

    def test_routing_respects_the_ring(self, catalog):
        rs = ReplicaSet(catalog, replicas=3, nshards=2, nranks=4)
        out = rs.serve_reads(queries(12), self.CFG)
        for rec in out.records:
            key = (rec.graph,
                   (("method", "ssi"),) if rec.qid % 3 else ())
            assert rec.replica == rs.router.route(key)

    def test_validation(self, catalog):
        rs = ReplicaSet(catalog, replicas=2, nshards=2, nranks=4)
        with pytest.raises(ConfigError, match="empty read burst"):
            rs.serve_reads([], self.CFG)
        upd = UpdateRequest(arrival=0.0, qid=0, tenant=0, graph="g",
                            inserts=np.array([[0, 1]]))
        with pytest.raises(ConfigError, match="queries only"):
            rs.serve_reads([upd], self.CFG)
        with pytest.raises(ConfigError, match="come as a pair"):
            rs.serve_reads(queries(4), self.CFG, kill_replica="r0")
        with pytest.raises(ConfigError, match="needs a kill"):
            rs.serve_reads(queries(4), self.CFG, rejoin_at=2)
        with pytest.raises(ConfigError, match="not live"):
            rs.serve_reads(queries(4), self.CFG, kill_replica="r9",
                           kill_at=1)
