"""Algebraic 2D kernels pinned to their edge-centric oracles, bit for bit.

``tc2d_spgemm`` replays packed SUMMA panels vectorized; the scalar
edge-centric ``tc2d`` loop is its oracle: triangle counts, per-rank
virtual clocks, results and trace totals must match with exact float
equality, uncached and cached, cold and warm.  ``lcc2d`` has no scalar
2D twin, so its scores are pinned to the 1D ``lcc`` kernel (the shared
:func:`~repro.core.local.lcc_from_triplets` finisher) and its clocks to
determinism.  The batched cached-``tc2d`` replay rides the same panels
through :meth:`ClampiCache.access_batch` and is pinned against the
scalar cached loop including CLaMPI statistics.
"""

import numpy as np
import pytest

from repro.clampi.cache import ConsistencyMode
from repro.core.config import CacheSpec, LCCConfig
from repro.core.linalg import (
    build_round_streams,
    run_tc2d_spgemm,
    summa_stats,
)
from repro.core.local import lcc_local, triangle_count_local
from repro.core.tc2d import build_grid_blocks, run_distributed_tc_2d
from repro.graph.generators import powerlaw_configuration, rmat
from repro.graph.partition2d import GridPartition2D
from repro.obs.trace import SpanTracer, activate, check_spans
from repro.session import Session, get_kernel, run_kernel
from repro.utils.errors import ConfigError

from tests.helpers import make_graph_suite

GRAPH = powerlaw_configuration(220, 1400, seed=11)

COUNTERS = ("n_remote_gets", "n_cache_hits", "n_local_reads",
            "bytes_remote", "bytes_cached", "bytes_local",
            "comm_time", "comp_time", "cache_time")


def assert_outcomes_identical(a, b):
    assert a.time == b.time
    assert a.clocks == b.clocks
    assert a.results == b.results
    for ta, tb in zip(a.traces, b.traces):
        for name in COUNTERS:
            assert getattr(ta, name) == getattr(tb, name), name


class TestUncachedParity:
    @pytest.mark.parametrize("nranks", [1, 4, 9, 16])
    def test_clocks_and_counts_match_oracle(self, nranks):
        cfg = LCCConfig(nranks=nranks)
        oracle = run_distributed_tc_2d(GRAPH, cfg)
        res = run_tc2d_spgemm(GRAPH, cfg)
        assert res.global_triangles == oracle.global_triangles
        assert res.global_triangles == triangle_count_local(GRAPH)
        assert_outcomes_identical(res.outcome, oracle.outcome)

    @pytest.mark.parametrize("idx", range(6))
    def test_graph_suite(self, idx):
        g = make_graph_suite()[idx]
        cfg = LCCConfig(nranks=4)
        oracle = run_distributed_tc_2d(g, cfg)
        res = run_tc2d_spgemm(g, cfg)
        assert res.global_triangles == oracle.global_triangles
        assert_outcomes_identical(res.outcome, oracle.outcome)

    def test_warm_resident_queries_stay_identical(self):
        cfg = LCCConfig(nranks=9)
        oracle = run_distributed_tc_2d(GRAPH, cfg)
        with Session(GRAPH, cfg) as session:
            for _ in range(3):
                res = session.run("tc2d_spgemm")
                assert res.global_triangles == oracle.global_triangles
                assert_outcomes_identical(res.outcome, oracle.outcome)


class TestCachedParity:
    @pytest.mark.parametrize("mode", [ConsistencyMode.ALWAYS_CACHE,
                                      ConsistencyMode.TRANSPARENT],
                             ids=lambda m: m.value)
    def test_spgemm_vs_scalar_loop_with_caches(self, mode):
        # Small enough to force evictions through the batch machinery.
        spec = CacheSpec(offsets_bytes=0, adj_bytes=4096, mode=mode)
        kw = dict(nranks=9, threads=2, cache=spec)
        with Session(GRAPH, LCCConfig(fast_path=True, **kw)) as fast, \
                Session(GRAPH, LCCConfig(fast_path=False, **kw)) as loop:
            for _ in range(3):
                rf = fast.run("tc2d_spgemm", keep_cache=True)
                rl = loop.run("tc2d_spgemm", keep_cache=True)
                assert rf.global_triangles == rl.global_triangles
                assert_outcomes_identical(rf.outcome, rl.outcome)
                assert rf.adj_cache_stats == rl.adj_cache_stats
                assert [c.stats.snapshot() for c in fast._c2d.caches] == \
                    [c.stats.snapshot() for c in loop._c2d.caches]

    @pytest.mark.parametrize("mode", [ConsistencyMode.ALWAYS_CACHE,
                                      ConsistencyMode.TRANSPARENT],
                             ids=lambda m: m.value)
    def test_cached_tc2d_batched_replay(self, mode):
        # The deferred follow-up: warm cached grid queries take the
        # vectorized access_batch path; the scalar loop is the oracle.
        spec = CacheSpec(offsets_bytes=0, adj_bytes=8192, mode=mode)
        kw = dict(nranks=9, threads=2, cache=spec)
        with Session(GRAPH, LCCConfig(fast_path=True, **kw)) as fast, \
                Session(GRAPH, LCCConfig(fast_path=False, **kw)) as loop:
            for _ in range(3):  # cold, then two warm reuse rounds
                rf = fast.run("tc2d", keep_cache=True)
                rl = loop.run("tc2d", keep_cache=True)
                assert rf.global_triangles == rl.global_triangles
                assert_outcomes_identical(rf.outcome, rl.outcome)
                assert [c.stats.snapshot() for c in fast._c2d.caches] == \
                    [c.stats.snapshot() for c in loop._c2d.caches]

    def test_warm_cache_actually_reused(self):
        spec = CacheSpec.relative(GRAPH.nbytes, 0.0, 1.0)
        with Session(GRAPH, LCCConfig(nranks=9, cache=spec)) as s:
            s.run("tc2d", keep_cache=True)
            warm = s.run("tc2d", keep_cache=True)
            stats = [c.stats.snapshot() for c in s._c2d.caches]
        assert warm.warm_cache
        assert sum(st["hits"] for st in stats) > 0


class TestLCC2D:
    @pytest.mark.parametrize("nranks", [1, 4, 9])
    def test_scores_match_1d_lcc(self, nranks):
        cfg = LCCConfig(nranks=nranks)
        r2 = run_kernel("lcc2d", GRAPH, cfg)
        r1 = run_kernel("lcc", GRAPH, cfg)
        np.testing.assert_array_equal(r2.raw.lcc, r1.raw.lcc)
        np.testing.assert_array_equal(r2.raw.triangles_per_vertex,
                                      r1.raw.triangles_per_vertex)
        assert r2.global_triangles == r1.global_triangles

    @pytest.mark.parametrize("idx", range(6))
    def test_graph_suite_scores(self, idx):
        g = make_graph_suite()[idx]
        res = run_kernel("lcc2d", g, LCCConfig(nranks=4))
        np.testing.assert_allclose(res.raw.lcc, lcc_local(g))

    def test_warm_queries_deterministic(self):
        with Session(GRAPH, LCCConfig(nranks=9)) as session:
            first = session.run("lcc2d")
            again = session.run("lcc2d")
        np.testing.assert_array_equal(first.raw.lcc, again.raw.lcc)
        assert_outcomes_identical(first.outcome, again.outcome)

    def test_directed_rejected(self):
        g = powerlaw_configuration(64, 300, seed=3, directed=True)
        with pytest.raises(ConfigError):
            run_kernel("lcc2d", g, LCCConfig(nranks=4))


class TestSquareGridGuard:
    @pytest.mark.parametrize("kernel", ["tc2d_spgemm", "lcc2d"])
    @pytest.mark.parametrize("nranks", [2, 6, 8, 12])
    def test_rectangular_grid_raises_clear_error(self, kernel, nranks):
        with pytest.raises(ConfigError) as exc:
            run_kernel(kernel, GRAPH, LCCConfig(nranks=nranks))
        msg = str(exc.value)
        assert kernel in msg
        assert "square process grid" in msg
        assert "tc2d" in msg  # points at the rectangular-capable kernel

    def test_error_suggests_square_rank_counts(self):
        with pytest.raises(ConfigError) as exc:
            run_kernel("tc2d_spgemm", GRAPH, LCCConfig(nranks=8))
        assert "4 or 9" in str(exc.value)

    def test_kernel_specs_carry_the_trait(self):
        assert get_kernel("tc2d_spgemm").square_grid_only
        assert get_kernel("lcc2d").square_grid_only
        assert not get_kernel("tc2d").square_grid_only


class TestDynamicUpdates:
    def test_post_update_parity_with_fresh_oracle(self):
        from repro.dynamic import random_update_batch

        cfg = LCCConfig(nranks=9, threads=2)
        with Session(GRAPH, cfg) as session:
            for step in range(3):
                batch = random_update_batch(session.graph, 12, 0.5,
                                            seed=step + 1)
                session.apply_updates(batch)
                res = session.run("tc2d_spgemm")
                oracle = run_distributed_tc_2d(session.graph, cfg)
                assert res.global_triangles == oracle.global_triangles
                assert_outcomes_identical(res.outcome, oracle.outcome)
                lcc2d = session.run("lcc2d")
                np.testing.assert_allclose(lcc2d.raw.lcc,
                                           lcc_local(session.graph))


class TestObservability:
    def test_summa_rounds_appear_in_trace(self):
        tracer = SpanTracer()
        grid = GridPartition2D(GRAPH.n, 9)
        blocks = build_grid_blocks(GRAPH, grid)
        with activate(tracer):
            summa_stats(GRAPH, grid, blocks)
        names = [s.name for s in tracer.spans]
        assert names.count("summa") == 1
        assert names.count("summa_round") == grid.cols
        assert check_spans(tracer.spans) == []

    def test_kernel_span_emitted(self):
        tracer = SpanTracer()
        with activate(tracer):
            run_tc2d_spgemm(GRAPH, LCCConfig(nranks=4))
        assert "tc2d_spgemm" in {s.name for s in tracer.spans}


class TestPanelResidency:
    def test_panels_built_once_per_epoch(self, monkeypatch):
        import repro.graphstore.grid2d as g2d

        calls = []
        real = g2d.summa_stats

        def counting(*a, **kw):
            calls.append(1)
            return real(*a, **kw)

        monkeypatch.setattr(g2d, "summa_stats", counting)
        with Session(GRAPH, LCCConfig(nranks=9)) as session:
            session.run("tc2d_spgemm")
            session.run("lcc2d")
            session.run("tc2d_spgemm")
            assert len(calls) == 1  # warm queries replay the same panels
            from repro.dynamic import random_update_batch

            session.apply_updates(random_update_batch(session.graph, 8,
                                                      0.5, seed=4))
            session.run("tc2d_spgemm")
        assert len(calls) == 2  # the resync retired the panel memo

    def test_stream_shape_matches_loop_gets(self):
        grid = GridPartition2D(GRAPH.n, 9)
        cfg = LCCConfig(nranks=9)
        res = run_distributed_tc_2d(GRAPH, cfg)
        streams = None
        with Session(GRAPH, cfg) as session:
            session.run("tc2d_spgemm")
            _, streams = session._c2d.panel_state()
        for rank, (stream, trace) in enumerate(
                zip(streams, res.outcome.traces)):
            # One whole-part get per remote row/column peer, in k-order.
            assert stream.targets.shape[0] == trace.n_remote_gets \
                == 2 * (grid.cols - 1)
