#!/usr/bin/env python
"""Serve many small queries from one resident cluster.

The paper's setting is an analytics service: the graph lives partitioned
across the cluster and *queries* arrive over time, which is exactly what
makes the CLaMPI caches pay off (their value is reuse across accesses,
Figure 4).  This example registers two custom kernels with the registry —

* ``tri-query``  — per-vertex triangle count: the owning rank fetches its
  neighbours' adjacency lists over RMA (through the caches) and counts
  intersections, a point query instead of a whole-graph pass;
* ``topk-lcc``   — the k most clustered vertices above a degree floor;

then fires a stream of point queries with ``keep_cache=True`` so each one
warms the caches for the next.

    python examples/session_queries.py
"""

from dataclasses import dataclass

import numpy as np

from repro import Session, register_kernel
from repro.core import CacheSpec, LCCConfig
from repro.core.intersect import count_common
from repro.graph import load_dataset


@dataclass
class TriangleQueryResult:
    """Result of one per-vertex triangle query."""

    vertex: int
    triangles: int
    time: float
    cache_hit_rate: float


@register_kernel("tri-query", resident=True, overwrite=True,
                 description="triangle count of one vertex (point query)")
def triangle_query(session, config, *, vertex=0, keep_cache=False, **_):
    engine, dist, _, adj_caches = session.resident_cluster(
        config, keep_cache=keep_cache)
    owner = dist.partition.owner(vertex)
    ctx = engine.contexts[owner]
    a = dist.local_adj(owner, vertex)
    ctx.advance(config.memory.local_read_time(a.nbytes))
    closed_wedges = 0
    for j in a:
        b = dist.read_adjacency(ctx, int(j))
        ctx.compute(config.compute.kernel_time("hybrid", a.shape[0],
                                               b.shape[0]))
        closed_wedges += count_common(a, b, "hybrid")
    dist.close_epochs()
    cache = adj_caches[owner] if adj_caches else None
    # Each triangle {v, j, k} closes two wedges at v (via j and via k).
    return TriangleQueryResult(
        vertex=vertex, triangles=closed_wedges // 2, time=ctx.now,
        cache_hit_rate=cache.stats.hit_rate if cache else 0.0)


@dataclass
class TopKResult:
    """The k most clustered vertices above a degree floor."""

    vertices: np.ndarray
    scores: np.ndarray
    time: float


@register_kernel("topk-lcc", resident=True, overwrite=True,
                 description="k most clustered vertices above a degree floor")
def topk_lcc(session, config, *, k=5, min_degree=10, keep_cache=False, **_):
    full = session.run("lcc", config=config, keep_cache=keep_cache)
    scores = full.lcc.copy()
    scores[session.graph.degrees() < min_degree] = -1.0
    order = np.argsort(-scores)[:k]
    return TopKResult(vertices=order, scores=full.lcc[order], time=full.time)


def main() -> None:
    graph = load_dataset("rmat-s20-ef16", scale=0.5)
    cfg = LCCConfig(
        nranks=8, threads=12,
        cache=CacheSpec.paper_split(graph.nbytes, graph.n, score="degree"))
    print(f"graph: {graph.name}  |V|={graph.n:,}  |E|={graph.m:,}\n")

    with Session(graph, cfg) as session:
        top = session.run("topk-lcc", k=3, min_degree=20)
        print("top-3 clustered vertices (degree >= 20):")
        for v, s in zip(top.vertices, top.scores):
            print(f"  vertex {v:6d}  lcc={s:.4f}  deg={graph.degree(int(v))}")

        # A stream of per-vertex triangle queries over the warm cluster.
        hubs = np.argsort(-graph.degrees())[:6]
        print("\nper-vertex triangle queries (keep_cache=True):")
        times = []
        for v in hubs:
            res = session.run("tri-query", vertex=int(v), keep_cache=True)
            times.append(res.time)
            print(f"  vertex {res.vertex:6d}: {res.triangles:7,} triangles "
                  f"in {res.time * 1e6:7.1f} us simulated "
                  f"(hit rate {res.cache_hit_rate:.0%}, "
                  f"warm={res.warm_cache})")
        print(f"\nwarm queries are faster: last {times[-1] * 1e6:.1f} us vs "
              f"first {times[0] * 1e6:.1f} us "
              f"({session.queries_run} queries, "
              f"{session.partition_builds} partitioning)")


if __name__ == "__main__":
    main()
