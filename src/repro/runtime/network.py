"""Network and memory cost models.

The simulation charges time analytically instead of moving real bytes over a
wire.  The paper models a remote read of ``s`` bytes as ``t(s) = alpha +
s * beta`` (Section IV-D1), with alpha around 2-3 microseconds on the Cray
Aries network and DRAM accesses in the hundreds of nanoseconds (Section
III-B).  Those are the defaults of :meth:`NetworkModel.aries`.

Two practical details from the paper are modelled explicitly:

* **Protocol switch at 16 MiB** — the authors cap TriC-Buffered's buffers at
  16 MiB because cray-mpich switches network protocol above that size,
  hurting large messages.  Messages above ``rendezvous_threshold`` pay an
  extra ``rendezvous_penalty``.
* **Message matching overhead for two-sided MPI** — the paper motivates RMA
  by the matching/copy overhead of send/recv; two-sided messages pay
  ``match_overhead`` on top of the wire time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.units import GiB, KiB, MiB, NS, US
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class NetworkModel:
    """Analytic timing model for network operations.

    Parameters
    ----------
    alpha:
        Per-operation completion latency in seconds for a blocking
        one-sided get/put.  This is the *end-to-end* cost of issuing the
        get and flushing it: raw Aries network latency (the 2-3 us the
        paper quotes) plus the MPI software path and the flush round.
    beta:
        Seconds per byte on the wire (inverse bandwidth).
    match_overhead:
        Extra latency charged to each **two-sided** message for MPI matching
        and possible extra copies; one-sided RMA does not pay it.
    rendezvous_threshold:
        Message size in bytes above which the rendezvous protocol applies.
    rendezvous_penalty:
        Extra seconds added to messages above the threshold.
    barrier_alpha:
        Per-stage latency of a dissemination barrier (``ceil(log2 p)``
        stages).
    """

    alpha: float = 12.0 * US
    beta: float = 1.0 / (10 * GiB)
    match_overhead: float = 1.0 * US
    rendezvous_threshold: int = 16 * MiB
    rendezvous_penalty: float = 50.0 * US
    barrier_alpha: float = 1.5 * US

    def __post_init__(self) -> None:
        require_positive("alpha", self.alpha)
        require_non_negative("beta", self.beta)
        require_non_negative("match_overhead", self.match_overhead)
        require_positive("rendezvous_threshold", self.rendezvous_threshold)
        require_non_negative("rendezvous_penalty", self.rendezvous_penalty)
        require_positive("barrier_alpha", self.barrier_alpha)

    # -- one-sided ----------------------------------------------------------
    def get_time(self, nbytes: int) -> float:
        """Time for a blocking one-sided read of ``nbytes`` (get + flush)."""
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        t = self.alpha + nbytes * self.beta
        if nbytes > self.rendezvous_threshold:
            t += self.rendezvous_penalty
        return t

    def put_time(self, nbytes: int) -> float:
        """Time for a one-sided write; same cost shape as a get."""
        return self.get_time(nbytes)

    # -- two-sided ----------------------------------------------------------
    def message_time(self, nbytes: int) -> float:
        """Wire + matching time of one two-sided message."""
        return self.get_time(nbytes) + self.match_overhead

    def send_overhead(self, nbytes: int) -> float:
        """CPU time the sender is busy injecting the message (eager model)."""
        return 0.5 * self.alpha + min(nbytes, 8 * KiB) * self.beta

    # -- collectives ----------------------------------------------------------
    def barrier_time(self, nranks: int) -> float:
        """Dissemination barrier: ``ceil(log2 p)`` rounds of latency."""
        if nranks <= 1:
            return 0.0
        return self.barrier_alpha * math.ceil(math.log2(nranks))

    def alltoallv_rank_time(self, sent_bytes: int, recv_bytes: int, nranks: int) -> float:
        """Per-rank cost of participating in an alltoallv exchange.

        Each rank posts ``p - 1`` messages and drains as many; the cost is
        latency per peer plus the byte volume it sends and receives.  The
        engine adds the synchronization part (everyone completes together at
        the max), reproducing TriC's "synchronization as costly as
        communication" behaviour.
        """
        if nranks <= 1:
            return 0.0
        t = (nranks - 1) * (self.alpha + self.match_overhead)
        t += (sent_bytes + recv_bytes) * self.beta
        big = self.rendezvous_threshold
        if sent_bytes > big * (nranks - 1) or recv_bytes > big * (nranks - 1):
            t += self.rendezvous_penalty
        return t

    # -- presets ------------------------------------------------------------
    @classmethod
    def aries(cls) -> "NetworkModel":
        """Cray Aries defaults (the paper's testbed)."""
        return cls()

    @classmethod
    def infiniband(cls) -> "NetworkModel":
        """EDR InfiniBand-ish: similar latency, slightly higher bandwidth."""
        return cls(alpha=5.0 * US, beta=1.0 / (12 * GiB))

    @classmethod
    def ethernet(cls) -> "NetworkModel":
        """Commodity 10 GbE with kernel TCP: much higher latency."""
        return cls(alpha=25 * US, beta=1.0 / (1.1 * GiB), match_overhead=5 * US)

    @classmethod
    def zero_latency(cls) -> "NetworkModel":
        """Degenerate model for unit tests: bandwidth-only costs."""
        return cls(alpha=1e-12, beta=1.0 / (10 * GiB), match_overhead=0.0,
                   barrier_alpha=1e-12, rendezvous_penalty=0.0)


@dataclass(frozen=True)
class MemoryModel:
    """Local memory hierarchy cost model.

    The paper contrasts remote reads (microseconds) with DRAM accesses
    (hundreds of nanoseconds) and on-chip cache hits (tens of nanoseconds);
    these defaults land in those bands.
    """

    dram_latency: float = 100 * NS
    dram_bandwidth: float = 20 * GiB
    cache_hit_latency: float = 40 * NS
    cache_bandwidth: float = 80 * GiB

    def __post_init__(self) -> None:
        require_positive("dram_latency", self.dram_latency)
        require_positive("dram_bandwidth", self.dram_bandwidth)
        require_positive("cache_hit_latency", self.cache_hit_latency)
        require_positive("cache_bandwidth", self.cache_bandwidth)

    def local_read_time(self, nbytes: int) -> float:
        """Reading ``nbytes`` from the local partition (DRAM-resident)."""
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        return self.dram_latency + nbytes / self.dram_bandwidth

    def cache_service_time(self, nbytes: int) -> float:
        """Serving ``nbytes`` from the CLaMPI cache buffer (already local)."""
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        return self.cache_hit_latency + nbytes / self.cache_bandwidth
