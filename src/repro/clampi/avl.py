"""A self-balancing AVL tree.

CLaMPI stores the free regions of its memory buffer in an AVL tree so that
best-fit allocation is logarithmic.  Keys are arbitrary comparable tuples;
the allocator uses ``(size, start)`` so that

* :meth:`AVLTree.ceiling` of ``(size, -1)`` finds the *smallest* free region
  able to hold ``size`` bytes (best fit), and
* the rightmost node is the largest free region (fragmentation metric).

The implementation is a classic recursive AVL with parent-free nodes; all
mutating operations rebuild the spine they touch.  ``check_invariants`` is
exercised heavily by the property-based tests.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class _Node:
    __slots__ = ("key", "left", "right", "height")

    def __init__(self, key: Any):
        self.key = key
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    bf = _balance_factor(node)
    if bf > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bf < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """Ordered set of comparable keys with O(log n) ceiling queries."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    # -- mutation --------------------------------------------------------------
    def insert(self, key: Any) -> None:
        """Insert ``key``; duplicate keys raise ``KeyError``."""
        self._root = self._insert(self._root, key)
        self._size += 1

    def _insert(self, node: Optional[_Node], key: Any) -> _Node:
        if node is None:
            return _Node(key)
        if key == node.key:
            raise KeyError(f"duplicate key {key!r}")
        if key < node.key:
            node.left = self._insert(node.left, key)
        else:
            node.right = self._insert(node.right, key)
        return _rebalance(node)

    def remove(self, key: Any) -> None:
        """Remove ``key``; missing keys raise ``KeyError``."""
        self._root, removed = self._remove(self._root, key)
        if not removed:
            raise KeyError(f"key not found: {key!r}")
        self._size -= 1

    def _remove(self, node: Optional[_Node], key: Any) -> tuple[Optional[_Node], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._remove(node.left, key)
        elif key > node.key:
            node.right, removed = self._remove(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            # Replace with in-order successor.
            succ = node.right
            while succ.left is not None:
                succ = succ.left
            node.key = succ.key
            node.right, _ = self._remove(node.right, succ.key)
        return _rebalance(node), removed

    # -- queries ----------------------------------------------------------------
    def ceiling(self, key: Any) -> Any | None:
        """Smallest stored key ``>= key``, or None."""
        node, best = self._root, None
        while node is not None:
            if node.key >= key:
                best = node.key
                node = node.left
            else:
                node = node.right
        return best

    def floor(self, key: Any) -> Any | None:
        """Largest stored key ``<= key``, or None."""
        node, best = self._root, None
        while node is not None:
            if node.key <= key:
                best = node.key
                node = node.right
            else:
                node = node.left
        return best

    def min(self) -> Any | None:
        """Smallest key, or None when empty."""
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key

    def max(self) -> Any | None:
        """Largest key, or None when empty."""
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node.key

    def __iter__(self) -> Iterator[Any]:
        """In-order (sorted) iteration."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key
            node = node.right

    # -- validation (test hook) --------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if AVL balance or ordering is violated."""
        def walk(node: Optional[_Node]) -> tuple[int, Any, Any]:
            if node is None:
                return 0, None, None
            lh, lmin, lmax = walk(node.left)
            rh, rmin, rmax = walk(node.right)
            assert abs(lh - rh) <= 1, f"unbalanced at {node.key!r}"
            assert node.height == 1 + max(lh, rh), f"stale height at {node.key!r}"
            if lmax is not None:
                assert lmax < node.key, "left subtree ordering violated"
            if rmin is not None:
                assert rmin > node.key, "right subtree ordering violated"
            return (
                node.height,
                lmin if lmin is not None else node.key,
                rmax if rmax is not None else node.key,
            )

        count = sum(1 for _ in self)
        assert count == self._size, f"size mismatch: {count} != {self._size}"
        walk(self._root)
