"""The unit of work a serving engine schedules: one query request.

A request names *what* to run (kernel), *where* (a catalog graph plus the
config overrides that shape its resident cluster) and *when* it enters
the system (simulated arrival time).  Two requests with equal
:attr:`~QueryRequest.session_key` can be served by the same resident
:class:`~repro.session.Session` — that equivalence is what the
cache-affinity scheduler exploits and what the session pool keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.utils.errors import ConfigError

#: A hashable resident-cluster identity: (graph name, sorted override items).
SessionKey = tuple

def freeze_overrides(overrides: Mapping[str, Any] | None) -> tuple:
    """Normalize an override mapping into a sorted, hashable tuple."""
    if not overrides:
        return ()
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True, order=True)
class QueryRequest:
    """One tenant query against one resident cluster.

    Ordering is (arrival, qid) so sorting a batch of requests yields the
    FIFO service order; ``qid`` breaks simultaneous-arrival ties
    deterministically.
    """

    arrival: float                      # simulated seconds since epoch 0
    qid: int                            # unique, dense, assigned at generation
    tenant: int = field(compare=False)  # who issued it
    graph: str = field(compare=False)   # catalog graph name
    kernel: str = field(compare=False, default="lcc")
    overrides: tuple = field(compare=False, default=())

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigError(f"arrival must be >= 0, got {self.arrival}")
        if self.qid < 0:
            raise ConfigError(f"qid must be >= 0, got {self.qid}")

    @property
    def session_key(self) -> SessionKey:
        """The resident cluster this query runs on (pool / affinity key)."""
        return (self.graph, self.overrides)

    def override_dict(self) -> dict[str, Any]:
        """The config overrides as a plain mapping."""
        return dict(self.overrides)
