"""The bench regression gate: check_against_baseline semantics."""

import pytest

from repro.analysis.benchreport import (
    DEFAULT_CHECK_TOLERANCE,
    check_against_baseline,
    load_report,
    write_report,
)


def replay_row(warm=10.0, cold=2.0, identical=True):
    return {"warm_speedup": warm, "cold_speedup": cold,
            "bit_identical": identical}


def report_with(rows):
    return {"cached_replay": rows}


BASELINE = report_with({
    "lcc:powerlaw-m": replay_row(warm=8.0),
    "lcc:rmat-s10": replay_row(warm=14.0),
    "tc:powerlaw-m": replay_row(warm=12.0),
})


class TestGate:
    def test_passes_when_fresh_meets_baseline(self):
        fresh = report_with({"lcc:powerlaw-s": replay_row(warm=9.0),
                             "tc:powerlaw-s": replay_row(warm=11.0)})
        assert check_against_baseline(fresh, BASELINE) == []

    def test_graph_names_not_matched_only_kernels(self):
        """CI quick graphs differ from the committed full-size baseline."""
        fresh = report_with({"lcc:tiny-x": replay_row(warm=4.0),
                             "tc:tiny-x": replay_row(warm=4.0)})
        # floors: lcc 0.25*8=2.0, tc 0.25*12=3.0 -> both pass at 4.0
        assert check_against_baseline(fresh, BASELINE) == []

    def test_worst_graph_is_the_contract(self):
        fresh = report_with({"lcc:a": replay_row(warm=50.0),
                             "lcc:b": replay_row(warm=0.5),
                             "tc:a": replay_row(warm=11.0)})
        problems = check_against_baseline(fresh, BASELINE)
        assert len(problems) == 1
        assert "lcc" in problems[0] and "0.50x" in problems[0]

    def test_bit_identical_is_non_negotiable(self):
        fresh = report_with({
            "lcc:a": replay_row(warm=100.0, identical=False),
            "tc:a": replay_row(warm=100.0)})
        problems = check_against_baseline(fresh, BASELINE)
        assert any("bit-identical" in p for p in problems)

    def test_missing_kernel_flagged(self):
        fresh = report_with({"lcc:a": replay_row(warm=9.0)})
        problems = check_against_baseline(fresh, BASELINE)
        assert any("'tc'" in p and "missing" in p for p in problems)

    def test_empty_fresh_report_flagged(self):
        problems = check_against_baseline(report_with({}), BASELINE)
        assert any("no cached_replay" in p for p in problems)

    def test_empty_baseline_flagged_not_vacuously_passed(self):
        """--check pointed at the wrong file must fail, not gate nothing."""
        fresh = report_with({"lcc:a": replay_row(warm=9.0)})
        problems = check_against_baseline(fresh, {"workloads": {}})
        assert any("baseline has no cached_replay" in p for p in problems)

    def test_tolerance_scales_the_floor(self):
        fresh = report_with({"lcc:a": replay_row(warm=5.0),
                             "tc:a": replay_row(warm=5.0)})
        assert check_against_baseline(fresh, BASELINE, tolerance=0.3) == []
        problems = check_against_baseline(fresh, BASELINE, tolerance=0.9)
        assert len(problems) == 2

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_against_baseline(BASELINE, BASELINE, tolerance=0.0)

    def test_default_tolerance_is_loose(self):
        assert 0 < DEFAULT_CHECK_TOLERANCE <= 0.5


class TestCommittedBaseline:
    def test_committed_baseline_is_self_consistent(self):
        """The repo-root BENCH_kernels.json passes the gate against itself."""
        from pathlib import Path
        path = Path(__file__).resolve().parents[2] / "BENCH_kernels.json"
        report = load_report(str(path))
        assert check_against_baseline(report, report) == []

    def test_load_write_round_trip(self, tmp_path):
        from pathlib import Path
        path = Path(__file__).resolve().parents[2] / "BENCH_kernels.json"
        report = load_report(str(path))
        out = tmp_path / "copy.json"
        write_report(report, str(out))
        assert load_report(str(out)) == report


class TestTrajectory:
    def test_row_summarizes_report(self):
        from repro.analysis.benchreport import trajectory_row

        report = report_with({"lcc:g": replay_row(warm=4.0),
                              "tc:g": replay_row(warm=6.0)})
        report["kernels"] = {"lcc:g": {"wall_clock_s": 0.5,
                                       "adj_hit_rate": 0.8},
                             "tc:g": {"wall_clock_s": 1.5,
                                      "adj_hit_rate": None}}
        row = trajectory_row(report, date="2026-07-26")
        assert row["date"] == "2026-07-26"
        assert row["n_kernels"] == 2
        assert row["total_kernel_wall_s"] == 2.0
        assert row["max_kernel_wall_s"] == 1.5
        assert row["mean_adj_hit_rate"] == 0.8
        assert row["min_warm_speedups"] == {"lcc": 4.0, "tc": 6.0}

    def test_append_creates_then_extends(self, tmp_path):
        from repro.analysis.benchreport import append_trajectory

        report = report_with({"lcc:g": replay_row(warm=4.0)})
        path = tmp_path / "BENCH_trajectory.json"
        append_trajectory(report, str(path), date="2026-07-25")
        append_trajectory(report, str(path), date="2026-07-26")
        import json

        data = json.loads(path.read_text())
        assert [r["date"] for r in data["rows"]] == ["2026-07-25",
                                                     "2026-07-26"]
        assert data["schema_version"] == 1

    def test_committed_trajectory_is_valid(self):
        """The repo-root trajectory file parses and has at least one row."""
        import json

        with open("BENCH_trajectory.json") as fh:
            data = json.load(fh)
        assert isinstance(data["rows"], list) and data["rows"]
        for row in data["rows"]:
            assert row["date"]
            # Kernel-bench rows carry warm speedups; other benches tag
            # their rows with a "kind" (e.g. the shard bench).
            if row.get("kind") == "shard":
                assert row["read_scaling"] > 0
                assert row["failover_digests_identical"] is True
            elif row.get("kind") == "async":
                assert row["burst_speedup"] > 0
                assert row["interleavings_identical"] is True
            else:
                assert "min_warm_speedups" in row

    def test_corrupt_trajectory_reported_cleanly(self, tmp_path):
        from repro.analysis.benchreport import append_trajectory

        path = tmp_path / "BENCH_trajectory.json"
        path.write_text('{"rows": [')  # truncated by a killed run
        with pytest.raises(ValueError, match="corrupt"):
            append_trajectory(report_with({}), str(path))
        # The corrupt file is left untouched for manual inspection.
        assert path.read_text() == '{"rows": ['
