"""Serving-layer benchmarks: scheduler policies under contended pools.

Wall-clock timings of the query-serving engine draining the standard
Zipf-skewed workload through each scheduler.  The simulated-clock
comparison (throughput, latency, warm fractions) is recorded per PR in
``BENCH_serve.json`` by ``repro serve --bench``; here we watch the real
cost of the serving loop itself — the affinity batching also makes the
*simulation* cheaper, because warm queries ride the batched cache replay.
"""

import pytest

from repro.analysis.serving import bench_serve_config, bench_workload_spec
from repro.serve import ServingEngine, default_catalog, generate_workload, make_scheduler
from repro.serve.workload import WorkloadSpec


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.5)


@pytest.fixture(scope="module")
def skewed_requests(catalog):
    return generate_workload(bench_workload_spec(tuple(catalog), quick=True))


@pytest.fixture(scope="module")
def uniform_requests(catalog):
    return generate_workload(
        bench_workload_spec(tuple(catalog), quick=True).uniform())


@pytest.mark.parametrize("scheduler", ["fifo", "affinity"])
def test_serve_zipf_workload(benchmark, catalog, skewed_requests, scheduler):
    engine = ServingEngine(catalog, bench_serve_config(),
                           make_scheduler(scheduler))
    outcome = benchmark.pedantic(engine.serve, args=(skewed_requests,),
                                 iterations=1, rounds=3)
    assert outcome.aggregates["n_queries"] == len(skewed_requests)


@pytest.mark.parametrize("scheduler", ["fifo", "affinity"])
def test_serve_uniform_workload(benchmark, catalog, uniform_requests,
                                scheduler):
    engine = ServingEngine(catalog, bench_serve_config(),
                           make_scheduler(scheduler))
    outcome = benchmark.pedantic(engine.serve, args=(uniform_requests,),
                                 iterations=1, rounds=3)
    assert outcome.aggregates["n_queries"] == len(uniform_requests)


def test_workload_generation(benchmark, catalog):
    """Generating a large trace is pure NumPy and should stay cheap."""
    spec = WorkloadSpec(n_queries=20000, arrival_rate=5000.0, n_tenants=64,
                        graphs=tuple(catalog), seed=3)
    requests = benchmark(generate_workload, spec)
    assert len(requests) == 20000
