"""Stable public entry points.

Quickstart::

    from repro import Session
    from repro.core import LCCConfig, CacheSpec
    from repro.graph import load_dataset

    g = load_dataset("livejournal")

    # One resident cluster, many queries (the Session API):
    cfg = LCCConfig(nranks=16, cache=CacheSpec.paper_split(2**24, g.n,
                                                           score="degree"))
    with Session(g, cfg) as session:
        result = session.run("lcc", keep_cache=True)   # cold caches
        warm = session.run("lcc", keep_cache=True)     # reuse: higher hit rate
        tc = session.run("tc")                         # same partitioned CSR
    print(result.time, result.summary())

    # One-shot helpers (thin wrappers over a throwaway session):
    from repro.core import compute_lcc
    scores = compute_lcc(g)            # local, returns the score array
    result = compute_lcc(g, cfg)       # distributed, full result object
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DistributedRunResult, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import lcc_local, triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.graph.csr import CSRGraph

__all__ = [
    "compute_lcc",
    "count_triangles",
    "run_distributed_lcc",
    "run_distributed_tc",
]


def compute_lcc(graph: CSRGraph, config: LCCConfig | None = None
                ) -> np.ndarray | DistributedRunResult:
    """Local clustering coefficient of every vertex.

    Without a config this computes locally and returns the score array;
    with a config it runs the ``"lcc"`` kernel on a throwaway
    :class:`~repro.session.Session` and returns the full
    :class:`DistributedRunResult` (whose ``.lcc`` attribute holds the same
    array, bit-identical to the local computation).  For repeated queries
    over one graph, hold a :class:`~repro.session.Session` instead.
    """
    if config is None:
        return lcc_local(graph)
    from repro.session import run_kernel

    return run_kernel("lcc", graph, config).raw


def count_triangles(graph: CSRGraph, config: LCCConfig | None = None
                    ) -> int | DistributedRunResult:
    """Global triangle count (undirected) / transitive triads (directed).

    Without a config: a local count, returned as an int.  With a config:
    the ``"tc"`` kernel (distributed edge-centric count with upper-triangle
    deduplication) on a throwaway session, returned as a
    :class:`DistributedRunResult`.
    """
    if config is None:
        return triangle_count_local(graph)
    from repro.session import run_kernel

    return run_kernel("tc", graph, config).raw
