"""Tests for the dataset registry."""

import numpy as np
import pytest

from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.properties import is_power_law_like
from repro.utils.errors import ConfigError


class TestRegistry:
    def test_all_table2_graphs_present(self):
        for name in ("orkut", "livejournal", "livejournal1", "skitter",
                     "uk-2005", "wiki-en", "rmat-s21-ef16", "rmat-s23-ef16",
                     "rmat-s30-ef16"):
            assert name in DATASETS

    def test_figure_graphs_present(self):
        for name in ("facebook-circles", "uniform", "rmat-s20-ef8",
                     "rmat-s20-ef16", "rmat-s20-ef32"):
            assert name in DATASETS

    def test_names_sorted(self):
        names = dataset_names()
        assert names == sorted(names)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            load_dataset("nope")

    def test_paper_metadata_recorded(self):
        spec = DATASETS["orkut"]
        assert spec.paper_vertices == 3_000_000
        assert spec.paper_edges == 117_200_000
        assert spec.paper_csr == "905.8 MiB"


class TestBuiltGraphs:
    @pytest.mark.parametrize("name", ["livejournal", "skitter",
                                      "rmat-s21-ef16"])
    def test_deterministic(self, name):
        a = load_dataset(name, seed=1)
        b = load_dataset(name, seed=1)
        np.testing.assert_array_equal(a.adjacency, b.adjacency)

    def test_degree_two_minimum(self):
        g = load_dataset("livejournal")
        deg = g.degrees()
        if g.directed:
            deg = deg + g.in_degrees()
        assert deg.min() >= 2

    def test_directedness_matches_table2(self):
        assert not load_dataset("orkut", scale=0.2).directed
        assert load_dataset("livejournal1", scale=0.2).directed
        assert load_dataset("wiki-en", scale=0.2).directed

    def test_power_law_class(self):
        assert is_power_law_like(load_dataset("orkut", scale=0.5))
        assert not is_power_law_like(load_dataset("uniform"))

    def test_scale_parameter(self):
        small = load_dataset("livejournal", scale=0.25)
        big = load_dataset("livejournal", scale=1.0)
        assert small.n < big.n

    def test_rmat_hub_spread(self):
        # Relabeling must spread hubs: rank 0's block shouldn't hold all of
        # the top-degree vertices.
        g = load_dataset("rmat-s21-ef16")
        deg = g.degrees()
        top = np.argsort(deg)[-40:]
        assert (top < g.n // 4).sum() < 30
