"""Incremental recompute parity against the full oracles."""

import numpy as np
import pytest

from repro.core.local import triangles_min_vertex, triangles_per_vertex_batched
from repro.dynamic import (
    IncrementalState,
    random_update_batch,
    triangles_min_vertex_subset,
    triangles_per_vertex_subset,
)
from repro.dynamic.delta import UpdateBatch
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, powerlaw_configuration


class TestSubsetKernels:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tpv_subset_matches_full(self, seed):
        g = powerlaw_configuration(150, 900, seed=seed)
        full = triangles_per_vertex_batched(g)
        vs = np.arange(0, g.n, 3, dtype=np.int64)
        np.testing.assert_array_equal(
            triangles_per_vertex_subset(g, vs), full[vs])

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tmin_subset_matches_full(self, seed):
        g = erdos_renyi(120, 700, seed=seed)
        full = triangles_min_vertex(g)
        vs = np.arange(g.n, dtype=np.int64)
        np.testing.assert_array_equal(
            triangles_min_vertex_subset(g, vs), full)

    def test_empty_subset(self):
        g = erdos_renyi(20, 40, seed=0)
        assert triangles_per_vertex_subset(g, np.empty(0, np.int64)).size == 0
        assert triangles_min_vertex_subset(g, np.empty(0, np.int64)).size == 0


class TestIncrementalState:
    def test_single_batch_bit_identical(self):
        g = powerlaw_configuration(200, 1200, seed=5)
        state = IncrementalState.from_graph(g)
        state.apply(random_update_batch(g, 16, 0.25, seed=11))
        np.testing.assert_array_equal(
            state.tpv, triangles_per_vertex_batched(state.graph))
        np.testing.assert_array_equal(
            state.tmin, triangles_min_vertex(state.graph))
        assert state.verify()

    def test_multiple_batches_with_deletes(self):
        g = powerlaw_configuration(150, 800, seed=6)
        state = IncrementalState.from_graph(g)
        for s in range(5):
            state.apply(random_update_batch(state.graph, 14, 0.5, seed=s))
        assert state.updates_applied == 5
        assert state.verify()

    def test_global_triangles_matches_both_paths(self):
        g = erdos_renyi(100, 600, seed=7)
        state = IncrementalState.from_graph(g)
        state.apply(random_update_batch(g, 10, 0.3, seed=8))
        assert state.global_triangles == int(state.tmin.sum())
        assert state.global_triangles == int(state.tpv.sum()) // 6

    def test_lcc_matches_oracle(self):
        from repro.core.local import lcc_local

        g = powerlaw_configuration(120, 700, seed=9)
        state = IncrementalState.from_graph(g)
        state.apply(random_update_batch(g, 12, 0.25, seed=10))
        np.testing.assert_array_equal(state.lcc, lcc_local(state.graph))

    def test_directed_graph_tpv_only(self):
        rng = np.random.default_rng(12)
        g = CSRGraph.from_edges(rng.integers(0, 60, size=(300, 2)), n=60,
                                directed=True)
        state = IncrementalState.from_graph(g)
        assert state.tmin is None
        batch = UpdateBatch.build(rng.integers(0, 60, size=(8, 2)), n=60,
                                  directed=True)
        state.apply(batch)
        np.testing.assert_array_equal(
            state.tpv, triangles_per_vertex_batched(state.graph))
        assert state.global_triangles == int(state.tpv.sum())

    def test_recompute_counter_is_sublinear(self):
        g = powerlaw_configuration(400, 2400, seed=13)
        state = IncrementalState.from_graph(g)
        state.apply(random_update_batch(g, 8, 0.25, seed=14))
        assert 0 < state.vertices_recomputed < g.n // 2

    def test_strict_passthrough(self):
        g = powerlaw_configuration(50, 200, seed=15)
        state = IncrementalState.from_graph(g)
        present = tuple(int(x) for x in g.edges()[0])
        from repro.utils.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            state.apply(UpdateBatch.build([present], n=g.n), strict=True)
