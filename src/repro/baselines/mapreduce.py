"""MapReduce-style triangle counting (Kolda et al., related work V-C).

The classic wedge-check formulation: every vertex *maps* its neighbour
pairs (wedges) to the rank owning the wedge's closing edge, a *shuffle*
(simulated alltoallv) redistributes them, and owners *reduce* by testing
whether the closing edge exists.  Each triangle is seen by its three
wedge centres, so the global count is the closed-wedge total divided by 3.

The point of carrying this baseline is its **volume**: the shuffle moves
one record per wedge — ``sum_v C(deg(v), 2)`` records, *quadratic* in hub
degree — which is exactly why the paper groups MapReduce with the
synchronization-bound prior work its asynchronous design replaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DistributedRunResult
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.graph.partition import BlockPartition1D
from repro.runtime.compute import ComputeModel
from repro.runtime.context import SimContext
from repro.runtime.engine import Engine
from repro.runtime.network import MemoryModel, NetworkModel
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class MapReduceConfig:
    """Configuration of a MapReduce-style TC run."""

    nranks: int = 8
    network: NetworkModel = field(default_factory=NetworkModel.aries)
    memory: MemoryModel = field(default_factory=MemoryModel)
    compute: ComputeModel = field(default_factory=ComputeModel)

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigError(f"nranks must be >= 1, got {self.nranks}")


def run_mapreduce_tc(graph: CSRGraph, config: MapReduceConfig | None = None
                     ) -> DistributedRunResult:
    """Wedge-check MapReduce triangle count on the simulated cluster."""
    if graph.directed:
        raise ConfigError("MapReduce TC expects an undirected graph")
    config = config or MapReduceConfig()
    engine = Engine(config.nranks, network=config.network,
                    memory=config.memory, compute=config.compute)
    part = BlockPartition1D(graph.n, config.nranks)
    dist = DistributedCSR(graph, part, engine)
    shuffle_volume = np.zeros(config.nranks, dtype=np.int64)

    def rank_fn(ctx: SimContext):
        rank = ctx.rank
        cm = config.compute
        vs = dist.local_vertices(rank)
        offs_local = dist.w_offsets.local_part(rank)
        adj_local = dist.w_adj.local_part(rank)

        # ---- map: emit every wedge (j, k), j < k, to owner(j) -------------
        wedge_j: list[list[np.ndarray]] = [[] for _ in range(ctx.nranks)]
        wedge_k: list[list[np.ndarray]] = [[] for _ in range(ctx.nranks)]
        for li in range(vs.shape[0]):
            a = adj_local[offs_local[li]:offs_local[li + 1]]
            d = a.shape[0]
            if d < 2:
                continue
            iu, iv = np.triu_indices(d, k=1)
            js = a[iu].astype(np.int64)
            ks = a[iv].astype(np.int64)
            ctx.compute(cm.edge_overhead + js.shape[0] * cm.c_ssi)
            owners = part.owners(js)
            for dest in np.unique(owners):
                mask = owners == dest
                wedge_j[dest].append(js[mask])
                wedge_k[dest].append(ks[mask])

        payloads = []
        nbytes = []
        for dest in range(ctx.nranks):
            if wedge_j[dest]:
                js = np.concatenate(wedge_j[dest])
                ks = np.concatenate(wedge_k[dest])
            else:
                js = np.empty(0, dtype=np.int64)
                ks = js
            payloads.append((js, ks))
            nbytes.append(js.nbytes + ks.nbytes)
        shuffle_volume[rank] = sum(nbytes)

        # ---- shuffle (the synchronization + volume bottleneck) -------------
        received = yield ctx.alltoallv(payloads, nbytes)

        # ---- reduce: closed-wedge checks against local adjacency ------------
        # The MapReduce contract groups records by key first: charge the
        # reducer-side sort over everything received (n log n comparisons).
        total_recv = sum(js.shape[0] for js, _ in received)
        if total_recv:
            ctx.compute(total_recv * max(1.0, np.log2(total_recv)) * cm.c_ssi)
        closed = 0
        for js, ks in received:
            if js.shape[0] == 0:
                continue
            order = np.argsort(js, kind="stable")
            js_sorted, ks_sorted = js[order], ks[order]
            ctx.compute(cm.edge_overhead + js.shape[0] * cm.c_ssi)
            boundaries = np.concatenate(
                [[0], np.nonzero(np.diff(js_sorted))[0] + 1,
                 [js_sorted.shape[0]]])
            for bi in range(boundaries.shape[0] - 1):
                lo, hi = int(boundaries[bi]), int(boundaries[bi + 1])
                j = int(js_sorted[lo])
                adj_j = dist.local_adj(rank, j)
                ctx.compute(cm.binary_search_time(hi - lo, adj_j.shape[0]))
                idx = np.searchsorted(adj_j, ks_sorted[lo:hi])
                idx[idx == adj_j.shape[0]] = 0
                closed += int(np.count_nonzero(
                    adj_j[idx] == ks_sorted[lo:hi]))

        total = yield ctx.allreduce(float(closed))
        return int(total)

    outcome = engine.run(rank_fn)
    closed_total = int(outcome.results[0])
    assert closed_total % 3 == 0, "every triangle has three wedge centres"
    result = DistributedRunResult(
        lcc=None,
        triangles_per_vertex=None,
        global_triangles=closed_total // 3,
        outcome=outcome,
    )
    result.shuffle_bytes = int(shuffle_volume.sum())  # type: ignore[attr-defined]
    return result
