"""Tests for 2D grid triangle counting."""

import pytest

from repro.core.config import CacheSpec, LCCConfig
from repro.core.local import triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.core.tc2d import run_distributed_tc_2d
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.partition2d import GridPartition2D
from repro.session import Session
from repro.utils.errors import ConfigError

from tests.helpers import make_graph_suite


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 4, 9, 16])
    def test_square_grids(self, nranks):
        g = rmat(7, 8, seed=7)
        res = run_distributed_tc_2d(g, LCCConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("nranks", [2, 6, 8, 12])
    def test_rectangular_grids(self, nranks):
        g = rmat(7, 8, seed=7)
        res = run_distributed_tc_2d(g, LCCConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("idx", range(6))
    def test_all_graphs(self, idx):
        g = make_graph_suite()[idx]
        res = run_distributed_tc_2d(g, LCCConfig(nranks=4))
        assert res.global_triangles == triangle_count_local(g)

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ConfigError):
            run_distributed_tc_2d(g)


class TestCommunicationScope:
    def test_fewer_peers_than_1d(self):
        # Each 2D rank contacts only its grid row + column.
        g = rmat(9, 8, seed=7)
        p = 16
        res2d = run_distributed_tc_2d(g, LCCConfig(nranks=p))
        res1d = run_distributed_tc(g, LCCConfig(nranks=p))
        gets_2d = res2d.outcome.total("n_remote_gets")
        gets_1d = res1d.outcome.total("n_remote_gets")
        # 2D fetches O(sqrt(p)) blocks per rank: p * 2(sqrt(p)-1) gets total,
        # versus one get pair per remote edge under 1D.
        assert gets_2d == p * 2 * (4 - 1) * 1  # 16 ranks -> 4x4 grid
        assert gets_2d < gets_1d

    def test_fully_asynchronous(self):
        g = rmat(8, 8, seed=7)
        res = run_distributed_tc_2d(g, LCCConfig(nranks=16))
        assert res.outcome.total("sync_time") == 0.0
        assert res.outcome.total("n_barriers") == 0


class TestRectangularFallback:
    """The non-square path: correct counts, 2D communication volume."""

    @pytest.mark.parametrize("nranks", [2, 6, 8, 12])
    def test_counts_and_get_pattern(self, nranks):
        g = rmat(7, 8, seed=7)
        grid = GridPartition2D(g.n, nranks)
        assert grid.rows != grid.cols  # really exercising the fallback
        res = run_distributed_tc_2d(g, LCCConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)
        # Every rank fetches its whole grid row + column once.
        expect = nranks * (grid.rows + grid.cols - 2)
        assert res.outcome.total("n_remote_gets") == expect
        assert res.outcome.total("n_local_reads") == 0

    def test_deterministic_across_runs(self):
        g = rmat(7, 8, seed=7)
        a = run_distributed_tc_2d(g, LCCConfig(nranks=8))
        b = run_distributed_tc_2d(g, LCCConfig(nranks=8))
        assert a.outcome.clocks == b.outcome.clocks
        assert a.outcome.time == b.outcome.time

    @pytest.mark.parametrize("idx", range(6))
    def test_graph_suite_on_rect_grid(self, idx):
        g = make_graph_suite()[idx]
        res = run_distributed_tc_2d(g, LCCConfig(nranks=6))
        assert res.global_triangles == triangle_count_local(g)

    def test_resident_cached_fallback_matches_per_call(self):
        # Rectangular grids never take the batched replay: the cached
        # resident session must price the same fallback program.
        g = rmat(7, 8, seed=7)
        spec = CacheSpec(offsets_bytes=0, adj_bytes=8192)
        cfg = LCCConfig(nranks=8, cache=spec)
        oracle = run_distributed_tc_2d(g, LCCConfig(nranks=8))
        with Session(g, cfg) as session:
            cold = session.run("tc2d", keep_cache=True)
            warm = session.run("tc2d", keep_cache=True)
            stats = [c.stats.snapshot() for c in session._c2d.caches]
        assert cold.global_triangles == oracle.global_triangles
        assert warm.global_triangles == oracle.global_triangles
        # Warm block fetches hit the cache, shortening the clocks.
        assert sum(st["hits"] for st in stats) > 0
        assert warm.outcome.time <= cold.outcome.time
