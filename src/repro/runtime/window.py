"""RMA windows: network-exposed per-rank arrays with epoch semantics.

A :class:`Window` models one ``MPI_Win`` created over a communicator of
``p`` ranks: each rank contributes a 1-D NumPy array.  Reads are expressed
in **elements** (offset/count), like MPI with a ``disp_unit`` equal to the
item size, and must happen inside a passive-target access epoch
(``lock_all`` ... ``unlock_all``), matching the paper's use of
``MPI_Win_lock_all``.  ``lock_all`` is *not* a lock — it only opens the
epoch — which the paper is at pains to point out; here it likewise does no
synchronization, it only arms the bookkeeping that catches misuse.

The actual data transfer is a NumPy slice copy; the *cost* of the transfer
is charged by :class:`~repro.runtime.context.SimContext`, not here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.errors import EpochError, WindowError


class Window:
    """One logically-distributed memory region (an ``MPI_Win``).

    Parameters
    ----------
    name:
        Identifier used in traces (e.g. ``"offsets"``, ``"adjacencies"``).
    parts:
        One 1-D array per rank; ``parts[r]`` is the region rank ``r``
        exposes.  Arrays must share a dtype but may differ in length
        (partitions are unequal for irregular graphs).
    """

    def __init__(self, name: str, parts: Sequence[np.ndarray]):
        if not parts:
            raise WindowError("a window needs at least one rank's region")
        dtype = parts[0].dtype
        clean: list[np.ndarray] = []
        for r, arr in enumerate(parts):
            a = np.asarray(arr)
            if a.ndim != 1:
                raise WindowError(
                    f"window {name!r}: rank {r} region must be 1-D, got shape {a.shape}"
                )
            if a.dtype != dtype:
                raise WindowError(
                    f"window {name!r}: dtype mismatch (rank 0 has {dtype}, "
                    f"rank {r} has {a.dtype})"
                )
            clean.append(np.ascontiguousarray(a))
        self.name = name
        self._parts = clean
        self.dtype = dtype
        self.itemsize = int(dtype.itemsize)
        self.nranks = len(clean)
        # Per-initiator epoch state: True while inside lock_all...unlock_all.
        self._epoch_open = [False] * self.nranks

    # -- epoch management (passive target) -------------------------------------
    def lock_all(self, rank: int) -> None:
        """Open an access epoch for ``rank``.  Purely local, no sync."""
        self._check_rank(rank)
        if self._epoch_open[rank]:
            raise EpochError(
                f"window {self.name!r}: rank {rank} already holds an access epoch"
            )
        self._epoch_open[rank] = True

    def unlock_all(self, rank: int) -> None:
        """Close ``rank``'s access epoch.  Purely local, no sync."""
        self._check_rank(rank)
        if not self._epoch_open[rank]:
            raise EpochError(
                f"window {self.name!r}: rank {rank} has no open access epoch"
            )
        self._epoch_open[rank] = False

    def epoch_open(self, rank: int) -> bool:
        """True while ``rank`` may issue RMA operations on this window."""
        self._check_rank(rank)
        return self._epoch_open[rank]

    # -- data access ------------------------------------------------------------
    def read(self, initiator: int, target: int, offset: int, count: int) -> np.ndarray:
        """Perform the data movement of a get (returns a copy).

        Bounds and epoch rules are enforced; timing is the caller's job.
        """
        self._check_rank(target)
        self._check_rank(initiator)
        if not self._epoch_open[initiator]:
            raise EpochError(
                f"window {self.name!r}: rank {initiator} issued a get outside "
                "an access epoch (missing lock_all)"
            )
        part = self._parts[target]
        if count < 0:
            raise WindowError(f"window {self.name!r}: negative count {count}")
        if offset < 0 or offset + count > part.shape[0]:
            raise WindowError(
                f"window {self.name!r}: get [{offset}, {offset + count}) out of "
                f"bounds for rank {target} region of length {part.shape[0]}"
            )
        return part[offset:offset + count].copy()

    def write(self, initiator: int, target: int, offset: int, data: np.ndarray) -> None:
        """Perform the data movement of a put."""
        self._check_rank(target)
        if not self._epoch_open[initiator]:
            raise EpochError(
                f"window {self.name!r}: rank {initiator} issued a put outside "
                "an access epoch"
            )
        data = np.asarray(data, dtype=self.dtype)
        part = self._parts[target]
        if offset < 0 or offset + data.shape[0] > part.shape[0]:
            raise WindowError(
                f"window {self.name!r}: put [{offset}, {offset + data.shape[0]}) "
                f"out of bounds for rank {target} region of length {part.shape[0]}"
            )
        part[offset:offset + data.shape[0]] = data

    def local_part(self, rank: int) -> np.ndarray:
        """Direct (zero-copy) view of ``rank``'s own region."""
        self._check_rank(rank)
        return self._parts[rank]

    def replace_part(self, rank: int, part: np.ndarray) -> np.ndarray:
        """Swap ``rank``'s exposed region for a new array (dynamic graphs).

        Models detaching and re-attaching a window region after its
        backing memory was rebuilt (``MPI_Win_detach``/``attach`` on a
        dynamic window).  Length may change; dtype may not.  Epoch state
        is untouched — callers coordinate invalidation of any caches that
        hold data from the old region.  Returns the old array.
        """
        self._check_rank(rank)
        a = np.asarray(part)
        if a.ndim != 1:
            raise WindowError(
                f"window {self.name!r}: replacement region for rank {rank} "
                f"must be 1-D, got shape {a.shape}")
        if a.dtype != self.dtype:
            raise WindowError(
                f"window {self.name!r}: replacement dtype {a.dtype} does not "
                f"match window dtype {self.dtype}")
        old = self._parts[rank]
        self._parts[rank] = np.ascontiguousarray(a)
        return old

    # -- geometry ------------------------------------------------------------
    def part_len(self, rank: int) -> int:
        """Number of elements exposed by ``rank``."""
        self._check_rank(rank)
        return int(self._parts[rank].shape[0])

    def part_nbytes(self, rank: int) -> int:
        """Bytes exposed by ``rank``."""
        return self.part_len(rank) * self.itemsize

    def total_nbytes(self) -> int:
        """Bytes exposed across all ranks."""
        return sum(self.part_nbytes(r) for r in range(self.nranks))

    def nbytes_of(self, count: int) -> int:
        """Bytes moved by a get of ``count`` elements."""
        return count * self.itemsize

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise WindowError(
                f"window {self.name!r}: rank {rank} out of range [0, {self.nranks})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Window(name={self.name!r}, nranks={self.nranks}, dtype={self.dtype}, "
            f"total={self.total_nbytes()} B)"
        )


class WindowRegistry:
    """Holds the windows of one simulated job, addressable by name.

    Mirrors how an MPI application keeps the pair ``w_offsets``/``w_adj``
    around; also gives the engine a single handle to close all epochs.
    """

    def __init__(self) -> None:
        self._windows: dict[str, Window] = {}

    def add(self, window: Window) -> Window:
        if window.name in self._windows:
            raise WindowError(f"duplicate window name {window.name!r}")
        self._windows[window.name] = window
        return window

    def __getitem__(self, name: str) -> Window:
        try:
            return self._windows[name]
        except KeyError:
            raise WindowError(f"unknown window {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._windows

    def __iter__(self):
        return iter(self._windows.values())

    def lock_all(self, rank: int) -> None:
        """Open an access epoch on every registered window for ``rank``."""
        for win in self._windows.values():
            win.lock_all(rank)

    def unlock_all(self, rank: int) -> None:
        """Close every open epoch ``rank`` holds."""
        for win in self._windows.values():
            if win.epoch_open(rank):
                win.unlock_all(rank)
