"""The dynamic-graph bench report and its regression gates."""

import copy

import pytest

from repro.analysis.dynamic import (
    DYNAMIC_REPORT_KEYS,
    check_dynamic_against_baseline,
    check_dynamic_report,
    run_dynamic_bench,
    write_dynamic_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_dynamic_bench(quick=True)


class TestQuickRun:
    def test_schema_and_gates(self, quick_report):
        for key in DYNAMIC_REPORT_KEYS:
            assert key in quick_report
        assert check_dynamic_report(quick_report) == []

    def test_incremental_rows(self, quick_report):
        assert quick_report["incremental"]
        for row in quick_report["incremental"].values():
            assert row["bit_identical"] is True
            assert row["speedup"] > 0
            assert 0 < row["n_affected"] < row["n_vertices"]

    def test_invalidation_rows(self, quick_report):
        for row in quick_report["invalidation"].values():
            assert row["post_update_bit_identical"] is True
            assert row["retained_warm_hits"] > 0
            assert row["invalidated_entries"] > 0
            assert row["retained_entries"] > 0
            # Retention ordering: warm > post-update > cold hit rates.
            assert (row["warm_hit_rate"] > row["post_update_hit_rate"]
                    > row["cold_hit_rate"])

    def test_serving_row(self, quick_report):
        srv = quick_report["serving"]
        assert srv["results_identical"] is True
        assert srv["n_updates"] > 0
        assert set(srv["schedulers"]) == {"fifo", "affinity"}

    def test_write_round_trip(self, quick_report, tmp_path):
        import json

        path = tmp_path / "BENCH_dynamic.json"
        write_dynamic_report(quick_report, str(path))
        assert json.loads(path.read_text())["quick"] is True

    def test_passes_against_committed_baseline(self, quick_report):
        from repro.analysis.benchreport import load_report

        baseline = load_report("BENCH_dynamic.json")
        assert check_dynamic_against_baseline(quick_report, baseline) == []


class TestGateClauses:
    def doctor(self, report, section, graph, **changes):
        doctored = copy.deepcopy(report)
        doctored[section][graph].update(changes)
        return doctored

    def test_bit_identity_is_non_negotiable(self, quick_report):
        gname = next(iter(quick_report["incremental"]))
        bad = self.doctor(quick_report, "incremental", gname,
                          bit_identical=False)
        assert any("bit-identical" in p for p in check_dynamic_report(bad))
        # Even the tolerance-based CI gate never waives it.
        assert any("bit-identical" in p
                   for p in check_dynamic_against_baseline(bad, quick_report))

    def test_speedup_floor_full_reports(self, quick_report):
        gname = next(iter(quick_report["incremental"]))
        slow = self.doctor(quick_report, "incremental", gname, speedup=1.5)
        slow["quick"] = False
        assert any("below" in p for p in check_dynamic_report(slow))
        # The same 1.5x is fine for a quick run...
        slow["quick"] = True
        assert check_dynamic_report(slow) == []

    def test_retained_hits_required(self, quick_report):
        gname = next(iter(quick_report["invalidation"]))
        flushed = self.doctor(quick_report, "invalidation", gname,
                              retained_warm_hits=0)
        assert any("retained" in p or "flushed" in p
                   for p in check_dynamic_report(flushed))

    def test_serving_identity_required(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["serving"]["results_identical"] = False
        assert any("barrier" in p for p in check_dynamic_report(bad))

    def test_baseline_relative_speedup(self, quick_report):
        base = copy.deepcopy(quick_report)
        for row in base["incremental"].values():
            row["speedup"] = 1000.0  # worst-case baseline speedup: 1000x
        problems = check_dynamic_against_baseline(quick_report, base)
        assert any("fell below" in p for p in problems)

    def test_missing_baseline_section_flagged(self, quick_report):
        problems = check_dynamic_against_baseline(quick_report, {})
        assert any("baseline" in p for p in problems)

    def test_bad_tolerance_rejected(self, quick_report):
        with pytest.raises(ValueError):
            check_dynamic_against_baseline(quick_report, quick_report,
                                           tolerance=0)

    def test_write_refuses_failing_report(self, quick_report, tmp_path):
        bad = copy.deepcopy(quick_report)
        bad["serving"]["results_identical"] = False
        with pytest.raises(ValueError):
            write_dynamic_report(bad, str(tmp_path / "x.json"))
