"""A bounded pool of resident :class:`~repro.session.Session`s.

Memory on a real cluster bounds how many partitioned graphs (plus their
CLaMPI caches) can stay resident at once; the pool models that with a
``capacity`` on live sessions.  Acquiring a key that is not resident
builds a session (cold partition, cold caches) and, at capacity, evicts
one first — ``lru`` (least recently served) or ``lfu`` (least queries
served, ties broken LRU).  Eviction closes the session, so its warm cache
contents are genuinely gone: re-acquiring the key pays the cold cost
again.  That is the contention the cache-affinity scheduler manages.

Graph state lives **outside** the pool, in a
:class:`~repro.graphstore.store.GraphStore`: sessions are built from the
store's latest snapshot of their graph, and committed updates advance
the store's version — so a key's graph history is a property of the
workload, never of pool-eviction luck, and every variant of one graph
resolves to the same versioned truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.config import LCCConfig
from repro.graph.csr import CSRGraph
from repro.graphstore.store import GraphStore
from repro.obs.trace import span as obs_span
from repro.serve.request import SessionKey
from repro.session import Session
from repro.utils.errors import ConfigError

#: Supported eviction policies.
POOL_POLICIES = ("lru", "lfu")


@dataclass
class PoolStats:
    """Counters the serving report surfaces."""

    builds: int = 0          # sessions constructed (cold partition + caches)
    evictions: int = 0       # sessions closed to make room
    reuses: int = 0          # acquisitions served by a resident session
    queries: dict = field(default_factory=dict)  # key -> queries served

    def as_dict(self) -> dict:
        return {"builds": self.builds, "evictions": self.evictions,
                "reuses": self.reuses}


class _Entry:
    __slots__ = ("session", "last_used", "uses", "pinned")

    def __init__(self, session: Session):
        self.session = session
        self.last_used = 0
        self.uses = 0
        self.pinned = False


class SessionPool:
    """At most ``capacity`` resident sessions, keyed by ``SessionKey``.

    ``catalog`` may be a plain ``{name: CSRGraph}`` mapping (wrapped into
    a fresh :class:`~repro.graphstore.store.GraphStore` at version 0) or
    an existing store to share.  ``config_for`` maps ``(graph,
    overrides_dict)`` to the :class:`~repro.core.config.LCCConfig` the
    session is built with — the serving engine injects rank count and
    cache sizing there.
    """

    def __init__(self, catalog: "Mapping[str, CSRGraph] | GraphStore",
                 config_for: Callable[[CSRGraph, dict], LCCConfig],
                 capacity: int = 4, policy: str = "lru", router=None):
        if capacity < 1:
            raise ConfigError(f"pool capacity must be >= 1, got {capacity}")
        if policy not in POOL_POLICIES:
            raise ConfigError(f"unknown pool policy {policy!r}; "
                              f"expected one of {POOL_POLICIES}")
        if isinstance(catalog, GraphStore):
            self.store = catalog
        elif callable(getattr(catalog, "graph", None)):
            # Any store duck-typing the GraphStore read surface — e.g. a
            # ShardedGraphStore — serves sessions the same way.
            self.store = catalog
        else:
            self.store = GraphStore(catalog)
        self.router = router
        self.config_for = config_for
        self.capacity = capacity
        self.policy = policy
        self.stats = PoolStats()
        self._entries: dict[SessionKey, _Entry] = {}
        self._clock = 0  # logical use counter for LRU recency

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: SessionKey) -> bool:
        return key in self._entries

    def resident_keys(self) -> list[SessionKey]:
        """Resident keys, least-recently-used first."""
        return sorted(self._entries, key=lambda k: self._entries[k].last_used)

    # -- dynamic graph state -------------------------------------------------
    def store_of(self, key: SessionKey):
        """The store serving ``key``: routed if a router is attached.

        With a :class:`~repro.shardstore.router.ShardRouter`, the pool
        resolves each session key to the replica store owning it on the
        consistent-hash ring; without one, every key reads the pool's
        own store.
        """
        if self.router is not None:
            return self.router.store_for(key)
        return self.store

    def graph_for(self, key: SessionKey) -> CSRGraph:
        """The key's current graph: its store's latest version."""
        graph_name = key[0]
        store = self.store_of(key)
        if graph_name not in store:
            raise ConfigError(
                f"graph {graph_name!r} is not in the serving catalog "
                f"({', '.join(store.names())})")
        return store.graph(graph_name)

    def sessions_of(self, graph_name: str) -> list[tuple[SessionKey, Session]]:
        """Every resident ``(key, session)`` serving ``graph_name``.

        The propagation set of a store commit: an update to the graph
        must reach all of these, whatever their config variant.
        """
        return [(key, entry.session) for key, entry in self._entries.items()
                if key[0] == graph_name]

    # -- the one mutating operation -----------------------------------------
    def acquire(self, key: SessionKey) -> tuple[Session, bool]:
        """Return ``(session, built)`` for a key, evicting if necessary."""
        self._clock += 1
        entry = self._entries.get(key)
        built = entry is None
        with obs_span("acquire", cat="pool", graph=key[0],
                      built=built) as sp:
            if built:
                _, overrides = key
                # Validate before evicting: a bad key must not cost a
                # warm resident session.
                graph = self.graph_for(key)
                if len(self._entries) >= self.capacity:
                    self._evict_one()
                entry = _Entry(Session(
                    graph, self.config_for(graph, dict(overrides))))
                self._entries[key] = entry
                self.stats.builds += 1
            else:
                self.stats.reuses += 1
            sp.note(resident=len(self._entries))
        entry.last_used = self._clock
        entry.uses += 1
        self.stats.queries[key] = self.stats.queries.get(key, 0) + 1
        return entry.session, built

    def _evict_one(self) -> None:
        victims = [k for k, e in self._entries.items() if not e.pinned]
        if not victims:
            raise ConfigError(
                "session pool is full of pinned sessions; admission must "
                "check can_admit() before acquiring a new key")
        if self.policy == "lfu":
            victim = min(victims,
                         key=lambda k: (self._entries[k].uses,
                                        self._entries[k].last_used))
        else:
            victim = min(victims,
                         key=lambda k: self._entries[k].last_used)
        with obs_span("evict", cat="pool", graph=victim[0],
                      policy=self.policy):
            self._entries.pop(victim).session.close()
        self.stats.evictions += 1

    # -- concurrency support (the cooperative engine) -----------------------
    def pin(self, key: SessionKey) -> None:
        """Exempt a resident session from eviction while a task uses it.

        The cooperative engine pins a key for the lifetime of the query
        running on it: a concurrent acquisition of a *different* key
        must never evict a session whose simulated run is still in
        flight.  Pins are exclusive per key because the engine also
        serializes same-key queries (one resident cluster serves one
        query at a time).
        """
        self._entries[key].pinned = True

    def unpin(self, key: SessionKey) -> None:
        """Release a pin (idempotent; the key may have been evicted)."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.pinned = False

    def can_admit(self, key: SessionKey) -> bool:
        """Could :meth:`acquire` serve this key right now without
        touching a pinned session?  Resident keys always admit; a build
        needs either spare capacity or an unpinned victim."""
        if key in self._entries or len(self._entries) < self.capacity:
            return True
        return any(not e.pinned for e in self._entries.values())

    def evict_where(self, predicate: Callable[[SessionKey], bool]) -> int:
        """Force-close every resident session whose key matches.

        The failover hook: killing a replica closes its resident
        clusters, so the warm state is genuinely gone and a re-routed
        key pays its cold build at the surviving store.  Returns how
        many sessions were evicted (counted in :attr:`stats`).
        """
        victims = [key for key in self._entries if predicate(key)]
        for key in victims:
            self._entries.pop(key).session.close()
            self.stats.evictions += 1
        return len(victims)

    def close(self) -> None:
        """Close every resident session (idempotent)."""
        for entry in self._entries.values():
            entry.session.close()
        self._entries.clear()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SessionPool({len(self)}/{self.capacity} resident, "
                f"policy={self.policy}, builds={self.stats.builds}, "
                f"evictions={self.stats.evictions})")
