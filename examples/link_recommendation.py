#!/usr/bin/env python
"""Link recommendation from clustering structure (paper Section I).

"Clustering coefficient is used to locate thematic relationships" — this
example scores candidate links by common-neighbour count (the same
intersection kernel the triangle counter uses) weighted by the endpoints'
LCC, recommending edges inside tightly clustered neighbourhoods.

    python examples/link_recommendation.py
"""

import numpy as np

from repro.core import LCCConfig, compute_lcc
from repro.core.intersect import count_common, intersect_values
from repro.graph import load_dataset


def recommend(graph, lcc: np.ndarray, for_vertex: int, top_k: int = 5):
    """Rank non-neighbours of ``for_vertex`` by (common neighbours, LCC)."""
    adj_v = graph.adj(for_vertex)
    neighbours = set(adj_v.tolist())
    candidates = []
    # Two-hop candidates only: someone sharing at least one neighbour.
    two_hop = set()
    for j in adj_v:
        two_hop.update(graph.adj(int(j)).tolist())
    two_hop -= neighbours | {for_vertex}
    for u in two_hop:
        common = count_common(adj_v, graph.adj(int(u)), "hybrid")
        if common:
            score = common * (1.0 + lcc[u])
            candidates.append((score, common, int(u)))
    candidates.sort(reverse=True)
    return candidates[:top_k]


def main() -> None:
    graph = load_dataset("facebook-circles")
    result = compute_lcc(graph, LCCConfig(nranks=4, threads=12))
    lcc = result.lcc
    print(f"graph: {graph.name} |V|={graph.n:,} |E|={graph.m:,}; "
          f"simulated LCC run {result.time * 1e3:.1f} ms\n")

    degrees = graph.degrees()
    # Recommend for a few well-connected members (not the extreme hubs).
    order = np.argsort(-degrees)
    picks = [int(v) for v in order[10:13]]
    for v in picks:
        print(f"recommendations for vertex {v} "
              f"(degree {degrees[v]}, LCC {lcc[v]:.3f}):")
        for score, common, u in recommend(graph, lcc, v):
            shared = intersect_values(graph.adj(v), graph.adj(u))[:4]
            print(f"  -> vertex {u:5d}  score {score:6.2f}  "
                  f"{common} shared friends (e.g. {list(map(int, shared))})")
        print()


if __name__ == "__main__":
    main()
