"""Bench: regenerate Table III (intersection-method throughput).

The acceptance property from the paper: the hybrid method beats both pure
methods on every graph.
"""

from conftest import run_once

from repro.analysis.experiments import exp_table3
from repro.analysis.throughput import edges_per_microsecond


def test_table3(benchmark):
    (table,) = run_once(benchmark, exp_table3.run, fast=True)
    for row in table.rows:
        assert row[-1] == "yes", f"hybrid lost on {row[0]}"


def test_hybrid_beats_pure_methods(benchmark, rmat_s20_ef16):
    def evaluate():
        h = edges_per_microsecond(rmat_s20_ef16, "hybrid", threads=16)
        s = edges_per_microsecond(rmat_s20_ef16, "ssi", threads=16)
        b = edges_per_microsecond(rmat_s20_ef16, "binary", threads=16)
        return h, s, b

    h, s, b = benchmark(evaluate)
    assert h >= max(s, b) * 0.999
    assert s > b  # SSI above binary search on CPU (paper Table III)
