"""Remote-read reuse analytics (Figures 1, 4 and 5).

Under Algorithm 3, rank ``r`` issues one remote adjacency read for every
directed edge ``(v, j)`` with ``owner(v) = r != owner(j)``.  The read
stream is therefore a pure function of the graph and the partition, and
all reuse statistics can be computed analytically (vectorized) instead of
tracing a simulation — the traced path exists too
(``LCCConfig(record_ops=True)``) and the tests check they agree.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import BlockPartition1D, Partition


def remote_read_counts(graph: CSRGraph, nranks: int,
                       partition: Partition | None = None,
                       initiator: int | None = None) -> np.ndarray:
    """Number of remote reads targeting each vertex.

    ``initiator=None`` counts reads from all ranks; otherwise only those
    issued by one rank (Figure 1 shows rank 0 of two).
    """
    part = partition or BlockPartition1D(graph.n, nranks)
    edges = graph.edges()
    src_owner = part.owners(edges[:, 0])
    dst_owner = part.owners(edges[:, 1])
    remote = src_owner != dst_owner
    if initiator is not None:
        remote &= src_owner == initiator
    targets = edges[remote, 1]
    return np.bincount(targets, minlength=graph.n)


def repetition_histogram(graph: CSRGraph, nranks: int,
                         initiator: int | None = 0
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Figure 1 (right): how many remote reads are repeated y times.

    Returns ``(repetitions, n_vertices)``: ``n_vertices[i]`` vertices are
    remotely read exactly ``repetitions[i]`` times by the initiator.
    """
    counts = remote_read_counts(graph, nranks, initiator=initiator)
    counts = counts[counts > 0]
    reps, freq = np.unique(counts, return_counts=True)
    return reps, freq


def reuse_curve(graph: CSRGraph, nranks: int
                ) -> tuple[np.ndarray, np.ndarray]:
    """Figure 4's curve: share of remote reads vs share of top vertices.

    Vertices are ordered by descending remote-read count; returns
    ``(vertex_fraction, cumulative_read_fraction)``.
    """
    counts = remote_read_counts(graph, nranks)
    order = np.argsort(-counts)
    sorted_counts = counts[order].astype(np.float64)
    total = sorted_counts.sum()
    if total == 0:
        return np.array([0.0, 1.0]), np.array([0.0, 0.0])
    cum = np.cumsum(sorted_counts) / total
    frac = np.arange(1, graph.n + 1) / graph.n
    return frac, cum


def top_degree_read_share(graph: CSRGraph, nranks: int,
                          top_fraction: float = 0.1) -> float:
    """Figure 4's highlight: remote reads hitting the top-degree vertices.

    The paper annotates the fraction of remote reads that target the top
    10% *highest degree* vertices (11.7% for uniform, 91.9% for R-MAT...).
    """
    counts = remote_read_counts(graph, nranks).astype(np.float64)
    total = counts.sum()
    if total == 0:
        return 0.0
    k = max(1, int(np.ceil(top_fraction * graph.n)))
    top_vertices = np.argsort(-graph.in_degrees())[:k]
    return float(counts[top_vertices].sum() / total)


def expected_reads_per_vertex(graph: CSRGraph, nranks: int) -> np.ndarray:
    """The paper's estimate: vertex j is read ~``deg-(j) (p-1)/p`` times.

    (Section III-B states ``(deg-(v) - p) / p`` per *node*; summed over the
    ``p - 1`` non-owner nodes under random placement this is
    ``deg-(v) (p-1)/p`` in expectation.)
    """
    return graph.in_degrees().astype(np.float64) * (nranks - 1) / nranks


def remote_edge_fraction(graph: CSRGraph, nranks: int,
                         partition: Partition | None = None) -> float:
    """Fraction of directed edges whose endpoints live on different ranks.

    The paper quotes 95% for an R-MAT S20 EF16 graph on 8 ranks, and 66%
    to 98% for S21 as the node count grows 4 -> 64.
    """
    part = partition or BlockPartition1D(graph.n, nranks)
    edges = graph.edges()
    if edges.shape[0] == 0:
        return 0.0
    remote = part.owners(edges[:, 0]) != part.owners(edges[:, 1])
    return float(remote.mean())


def fig5_scatter(graph: CSRGraph, nranks: int = 2
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 5's data: per-vertex (degree, remote accesses, entry bytes).

    Returns three aligned arrays for vertices with at least one remote
    access: the out-degree, the number of remote accesses, and the C_adj
    entry size in bytes (degree times the adjacency item size).
    """
    counts = remote_read_counts(graph, nranks)
    mask = counts > 0
    degrees = graph.degrees()[mask]
    accessed = counts[mask]
    entry_bytes = degrees * graph.adjacency.itemsize
    return degrees, accessed, entry_bytes
