"""Tests for the OpenMP cost model."""

import pytest

from repro.core.threading import OpenMPModel
from repro.runtime.compute import ComputeModel


class TestScaling:
    def test_more_threads_never_slower_above_cutoff(self):
        m1 = OpenMPModel(threads=1)
        m16 = OpenMPModel(threads=16)
        # Big lists parallelize well.
        assert m16.ssi_time(5000, 5000) < m1.ssi_time(5000, 5000)
        assert (m16.binary_search_time(3000, 50_000)
                < m1.binary_search_time(3000, 50_000))

    def test_speedup_saturates(self):
        # The Figure 6 shape: 16 threads nowhere near 16x on typical edges.
        m1 = OpenMPModel(threads=1)
        m16 = OpenMPModel(threads=16)
        speedup = m1.ssi_time(400, 400) / m16.ssi_time(400, 400)
        assert 1.0 < speedup < 8.0

    def test_small_lists_stay_sequential(self):
        cm = ComputeModel()
        m = OpenMPModel(threads=16, cutoff=128, compute=cm)
        # Total length below the cut-off: identical to the sequential model.
        assert m.ssi_time(20, 20) == cm.ssi_time(20, 20)

    def test_region_overhead_hurts_small_parallel_work(self):
        m = OpenMPModel(threads=16, cutoff=0)
        cm = ComputeModel()
        # Just above cutoff 0, parallel pays the region entry and can lose.
        assert m.ssi_time(30, 30) > cm.ssi_time(30, 30) * 0.5


class TestWaitPolicy:
    def test_active_cheaper_than_passive(self):
        a = OpenMPModel(threads=8, wait_policy="active")
        p = OpenMPModel(threads=8, wait_policy="passive")
        assert a.ssi_time(5000, 5000) < p.ssi_time(5000, 5000)

    def test_improvement_is_percent_level(self):
        # The paper measured 2-4% with OMP_WAIT_POLICY=active.
        a = OpenMPModel(threads=16, wait_policy="active")
        p = OpenMPModel(threads=16, wait_policy="passive")
        ta, tp = a.ssi_time(800, 800), p.ssi_time(800, 800)
        assert 0.0 < (tp - ta) / tp < 0.25

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            OpenMPModel(wait_policy="lazy")


class TestDispatch:
    def test_kernel_time_dispatch(self):
        m = OpenMPModel(threads=4)
        assert m.kernel_time("ssi", 10, 10) == m.ssi_time(10, 10)
        assert m.kernel_time("binary", 10, 10) == m.binary_search_time(10, 10)
        assert m.kernel_time("hybrid", 10, 10) == m.hybrid_time(10, 10)
        with pytest.raises(ValueError):
            m.kernel_time("nope", 1, 1)

    def test_hybrid_picks_per_rule(self):
        m = OpenMPModel(threads=4)
        assert m.hybrid_time(500, 500) == m.ssi_time(500, 500)
        assert m.hybrid_time(10, 100_000) == m.binary_search_time(10, 100_000)

    def test_with_threads(self):
        m = OpenMPModel(threads=1, cutoff=99)
        m2 = m.with_threads(8)
        assert m2.threads == 8
        assert m2.cutoff == 99

    def test_validation(self):
        with pytest.raises(Exception):
            OpenMPModel(threads=0)
