"""DistTC-style shadow-edge baseline (Hoang et al., HPEC'19).

DistTC "computes and distributes shadow edges that are necessary for
computing triangles locally.  This approach leads to a low computation
time but makes the total running time dominated by this pre-computation
step" (paper Section I).  We reproduce the two-phase structure:

1. **precompute** — every rank determines the remote vertices its local
   edges reference, requests their adjacency lists, and receives them in
   one personalized all-to-all (the shadow replication).  The volume is
   one copy of every remotely-referenced adjacency list per referencing
   rank — typically several times the graph size for scale-free graphs;
2. **count** — a purely local edge-centric triangle count over the
   (local + shadow) adjacency view; zero communication.

The result carries ``precompute_time`` / ``count_time`` attributes so the
ablation benchmark can show where the time goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DistributedRunResult
from repro.core.intersect import count_common_above
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.graph.partition import BlockPartition1D
from repro.runtime.compute import ComputeModel
from repro.runtime.context import SimContext
from repro.runtime.engine import Engine
from repro.runtime.network import MemoryModel, NetworkModel
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class DistTCConfig:
    """Configuration of a DistTC-style run."""

    nranks: int = 8
    network: NetworkModel = field(default_factory=NetworkModel.aries)
    memory: MemoryModel = field(default_factory=MemoryModel)
    compute: ComputeModel = field(default_factory=ComputeModel)

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigError(f"nranks must be >= 1, got {self.nranks}")


def run_disttc(graph: CSRGraph, config: DistTCConfig | None = None
               ) -> DistributedRunResult:
    """Two-phase shadow-edge triangle count on the simulated cluster."""
    if graph.directed:
        raise ConfigError("DistTC counts triangles of undirected graphs")
    config = config or DistTCConfig()
    engine = Engine(config.nranks, network=config.network,
                    memory=config.memory, compute=config.compute)
    part = BlockPartition1D(graph.n, config.nranks)
    dist = DistributedCSR(graph, part, engine)
    phase_times = np.zeros((config.nranks, 2))

    def rank_fn(ctx: SimContext):
        rank = ctx.rank
        cm = config.compute
        vs = dist.local_vertices(rank)
        offs_local = dist.w_offsets.local_part(rank)
        adj_local = dist.w_adj.local_part(rank)

        # ---- Phase 1: shadow replication --------------------------------
        # Unique remote vertices referenced by local edges (v < j side only;
        # those are the adjacency lists the local count will intersect).
        referenced: set[int] = set()
        for li in range(vs.shape[0]):
            v = int(vs[li])
            a = adj_local[offs_local[li]:offs_local[li + 1]]
            for j in a[np.searchsorted(a, v + 1):]:
                j = int(j)
                if part.owner(j) != rank:
                    referenced.add(j)
        # Request sizes per owner; receive every list in one alltoallv.
        requests: list[list[int]] = [[] for _ in range(ctx.nranks)]
        for j in sorted(referenced):
            requests[part.owner(j)].append(j)
        req_bytes = [8 * len(r) for r in requests]
        incoming = yield ctx.alltoallv(requests, req_bytes)
        # Serve: collect the adjacency lists others asked of us.  Each
        # served list is packed and shipped as its own message.
        replies: list[list[np.ndarray]] = [[] for _ in range(ctx.nranks)]
        reply_bytes = [0] * ctx.nranks
        net = config.network
        for src, wanted in enumerate(incoming):
            for j in wanted:
                lst = dist.local_adj(rank, int(j))
                replies[src].append(lst)
                reply_bytes[src] += lst.nbytes
                dt = net.match_overhead + lst.shape[0] * cm.c_ssi
                ctx.advance(dt)
                ctx.trace.comm_time += dt
        shadow_lists = yield ctx.alltoallv(replies, reply_bytes)
        shadows: dict[int, np.ndarray] = {}
        for src in range(ctx.nranks):
            for j, lst in zip(requests[src], shadow_lists[src]):
                shadows[j] = lst
                # Unpack + index the shadow list locally.
                dt = net.match_overhead + lst.shape[0] * cm.c_ssi
                ctx.advance(dt)
                ctx.trace.comp_time += dt
        phase_times[rank, 0] = ctx.now

        # ---- Phase 2: purely local count ---------------------------------
        count = 0
        for li in range(vs.shape[0]):
            v = int(vs[li])
            a = adj_local[offs_local[li]:offs_local[li + 1]]
            for j in a[np.searchsorted(a, v + 1):]:
                j = int(j)
                adj_j = shadows[j] if j in shadows else dist.local_adj(rank, j)
                ctx.compute(cm.hybrid_time(a.shape[0], adj_j.shape[0]))
                count += count_common_above(a, adj_j, j, "hybrid")
        phase_times[rank, 1] = ctx.now - phase_times[rank, 0]
        total = yield ctx.allreduce(float(count))
        return int(total)

    outcome = engine.run(rank_fn)
    result = DistributedRunResult(
        lcc=None,
        triangles_per_vertex=None,
        global_triangles=int(outcome.results[0]),
        outcome=outcome,
    )
    result.precompute_time = float(phase_times[:, 0].max())  # type: ignore[attr-defined]
    result.count_time = float(phase_times[:, 1].max())  # type: ignore[attr-defined]
    return result
