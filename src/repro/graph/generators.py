"""Synthetic graph generators.

The paper evaluates on R-MAT graphs (a=0.57, b=c=0.19, d=0.05 — the
Graph500 parameters it quotes) and on SNAP/KONECT/UbiCrawler real-world
graphs.  The latter are not redistributable offline, so
:mod:`repro.graph.datasets` builds stand-ins from the generators here:

* :func:`rmat` — the recursive-matrix model, vectorized over edges;
* :func:`powerlaw_configuration` — configuration model with a Zipf degree
  law, the stand-in for scale-free social networks (LiveJournal, Orkut...);
* :func:`erdos_renyi` — the "Uniform" degree-distribution contrast of
  Figure 4;
* :func:`ego_circles` — overlapping dense circles around ego vertices, a
  stand-in for the Facebook-circles dataset of Figures 1 and 5;
* small deterministic shapes (cliques, rings of cliques) for unit tests
  with hand-countable triangle counts.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.errors import ConfigError
from repro.utils.rng import make_rng


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    d: float = 0.05,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """R-MAT graph with ``2**scale`` vertices and ``edge_factor * 2**scale``
    edge samples (duplicates and self-loops are dropped, as in the paper's
    simple-graph setting, so the final edge count is slightly lower).
    """
    if scale < 1 or scale > 26:
        raise ConfigError(f"rmat scale out of supported range [1, 26]: {scale}")
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise ConfigError(f"rmat probabilities must sum to 1, got {a+b+c+d}")
    rng = make_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Quadrant probabilities: (row_bit, col_bit) in {(0,0),(0,1),(1,0),(1,1)}.
    p = np.array([a, b, c, d])
    cum = np.cumsum(p)
    for bit in range(scale):
        u = rng.random(m)
        quadrant = np.searchsorted(cum, u, side="right")
        src = (src << 1) | (quadrant >> 1)
        dst = (dst << 1) | (quadrant & 1)
    edges = np.column_stack([src, dst])
    return CSRGraph.from_edges(edges, n, directed=directed,
                               name=name or f"rmat-s{scale}-ef{edge_factor}")


def erdos_renyi(
    n: int,
    m: int,
    *,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """G(n, m)-style uniform graph (``m`` edge samples, duplicates dropped)."""
    if n < 2:
        raise ConfigError(f"erdos_renyi needs n >= 2, got {n}")
    rng = make_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return CSRGraph.from_edges(np.column_stack([src, dst]), n,
                               directed=directed, name=name or f"uniform-n{n}")


def powerlaw_configuration(
    n: int,
    m: int,
    *,
    gamma: float = 2.3,
    max_degree: int | None = None,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
    name: str = "",
) -> CSRGraph:
    """Configuration-model graph with a Zipf(``gamma``) degree law.

    Degrees are sampled from a truncated power law and rescaled so the stub
    count is ~``2 m``; stubs are then matched uniformly at random.  This is
    the standard stand-in for scale-free social graphs: it preserves the
    property the paper's caching analysis rests on — a small set of
    high-degree vertices attracting most remote reads (Observation 3.1).
    """
    if n < 2:
        raise ConfigError(f"powerlaw_configuration needs n >= 2, got {n}")
    if gamma <= 1.0:
        raise ConfigError(f"gamma must be > 1, got {gamma}")
    rng = make_rng(seed)
    cap = max_degree if max_degree is not None else max(4, n // 8)
    # Inverse-CDF sampling of a truncated discrete power law on [1, cap].
    ks = np.arange(1, cap + 1, dtype=np.float64)
    weights = ks ** (-gamma)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    degrees = np.searchsorted(cdf, rng.random(n), side="left") + 1
    # Rescale to hit the target stub count while keeping the shape.
    target_stubs = 2 * m
    scale_f = target_stubs / degrees.sum()
    degrees = np.maximum(1, np.round(degrees * scale_f)).astype(np.int64)
    if degrees.sum() % 2 == 1:
        degrees[int(np.argmax(degrees))] += 1
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = stubs.shape[0] // 2
    edges = np.column_stack([stubs[:half], stubs[half:2 * half]])
    return CSRGraph.from_edges(edges, n, directed=directed,
                               name=name or f"powerlaw-n{n}")


def ego_circles(
    n_egos: int = 10,
    circle_size: int = 40,
    n_circles_per_ego: int = 10,
    *,
    p_intra: float = 0.55,
    p_bridge: float = 0.002,
    seed: int | np.random.Generator | None = None,
    name: str = "",
) -> CSRGraph:
    """Ego-network stand-in for the Facebook-circles dataset.

    Each ego vertex connects to every member of its circles; circles are
    dense internally (``p_intra``) and sparse across (``p_bridge``).  This
    yields the high clustering and hub-dominated remote-read pattern the
    paper shows in Figures 1 and 5.
    """
    rng = make_rng(seed)
    members_per_ego = circle_size * n_circles_per_ego
    n = n_egos * (1 + members_per_ego)
    edges: list[np.ndarray] = []
    for ego_idx in range(n_egos):
        base = ego_idx * (1 + members_per_ego)
        ego = base
        members = np.arange(base + 1, base + 1 + members_per_ego)
        # Ego-to-member spokes.
        edges.append(np.column_stack([np.full(members.shape[0], ego), members]))
        # Dense intra-circle links.
        for ci in range(n_circles_per_ego):
            circle = members[ci * circle_size:(ci + 1) * circle_size]
            iu, iv = np.triu_indices(circle.shape[0], k=1)
            mask = rng.random(iu.shape[0]) < p_intra
            edges.append(np.column_stack([circle[iu[mask]], circle[iv[mask]]]))
    # Sparse bridges across the whole graph.
    n_bridges = int(p_bridge * n * n)
    if n_bridges:
        bs = rng.integers(0, n, size=n_bridges)
        bd = rng.integers(0, n, size=n_bridges)
        edges.append(np.column_stack([bs, bd]))
    all_edges = np.concatenate(edges, axis=0)
    return CSRGraph.from_edges(all_edges, n, directed=False,
                               name=name or "ego-circles")


# -- small deterministic shapes (tests) -----------------------------------------

def complete_graph(n: int, name: str = "") -> CSRGraph:
    """K_n — has exactly C(n, 3) triangles and LCC 1 everywhere."""
    iu, iv = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(np.column_stack([iu, iv]), n,
                               name=name or f"K{n}")


def ring_of_cliques(n_cliques: int, clique_size: int, name: str = "") -> CSRGraph:
    """``n_cliques`` copies of K_k joined in a ring by single edges.

    Triangles: ``n_cliques * C(k, 3)`` (ring edges close no triangles).
    """
    if clique_size < 2:
        raise ConfigError("clique_size must be >= 2")
    edges = []
    for ci in range(n_cliques):
        base = ci * clique_size
        iu, iv = np.triu_indices(clique_size, k=1)
        edges.append(np.column_stack([iu + base, iv + base]))
        nxt = ((ci + 1) % n_cliques) * clique_size
        edges.append(np.array([[base, nxt]]))
    n = n_cliques * clique_size
    return CSRGraph.from_edges(np.concatenate(edges), n,
                               name=name or f"ring{n_cliques}xK{clique_size}")


def star_graph(n_leaves: int, name: str = "") -> CSRGraph:
    """A star — zero triangles, LCC 0 everywhere."""
    leaves = np.arange(1, n_leaves + 1)
    edges = np.column_stack([np.zeros_like(leaves), leaves])
    return CSRGraph.from_edges(edges, n_leaves + 1, name=name or f"star{n_leaves}")


def path_graph(n: int, name: str = "") -> CSRGraph:
    """A simple path — zero triangles."""
    src = np.arange(n - 1)
    return CSRGraph.from_edges(np.column_stack([src, src + 1]), n,
                               name=name or f"path{n}")
