"""Tests for table rendering."""

import pytest

from repro.analysis.tables import Table, format_speedup


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="T")
        t.add_row("a", 1)
        t.add_row("longer-name", 2.5)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # All rows align to the same width.
        assert len(lines[3]) <= len(lines[1]) + 2

    def test_wrong_cell_count_rejected(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_markdown(self):
        t = Table(["a", "b"], title="MD")
        t.add_row(1, 2)
        md = t.render_markdown()
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert "| 1 | 2 |" in md

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row(0.5)
        t.add_row(1234.5678)
        t.add_row(0.000001)
        t.add_row(0)
        cells = [row[0] for row in t.rows]
        assert cells[0] == "0.5"
        assert cells[1] == "1.23e+03"
        assert cells[2] == "1e-06"
        assert cells[3] == "0"

    def test_str_is_render(self):
        t = Table(["a"])
        t.add_row("x")
        assert str(t) == t.render()


class TestSpeedup:
    def test_format(self):
        assert format_speedup(10.0, 2.0) == "5.0x"
        assert format_speedup(1.0, 0.0) == "inf"
