"""Tests for RMA windows: bounds, epochs, data movement."""

import numpy as np
import pytest

from repro.runtime.window import Window, WindowRegistry
from repro.utils.errors import EpochError, WindowError


def make_window():
    return Window("w", [np.arange(10, dtype=np.int32),
                        np.arange(100, 105, dtype=np.int32)])


class TestWindowConstruction:
    def test_basic_geometry(self):
        win = make_window()
        assert win.nranks == 2
        assert win.part_len(0) == 10
        assert win.part_len(1) == 5
        assert win.itemsize == 4
        assert win.part_nbytes(0) == 40
        assert win.total_nbytes() == 60
        assert win.nbytes_of(3) == 12

    def test_empty_parts_rejected(self):
        with pytest.raises(WindowError):
            Window("w", [])

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(WindowError):
            Window("w", [np.zeros(3, dtype=np.int32),
                         np.zeros(3, dtype=np.int64)])

    def test_2d_region_rejected(self):
        with pytest.raises(WindowError):
            Window("w", [np.zeros((2, 2), dtype=np.int32)])


class TestEpochs:
    def test_get_outside_epoch_rejected(self):
        win = make_window()
        with pytest.raises(EpochError):
            win.read(0, 1, 0, 3)

    def test_get_inside_epoch_works(self):
        win = make_window()
        win.lock_all(0)
        data = win.read(0, 1, 1, 3)
        np.testing.assert_array_equal(data, [101, 102, 103])

    def test_double_lock_rejected(self):
        win = make_window()
        win.lock_all(0)
        with pytest.raises(EpochError):
            win.lock_all(0)

    def test_unlock_without_lock_rejected(self):
        win = make_window()
        with pytest.raises(EpochError):
            win.unlock_all(0)

    def test_epochs_are_per_rank(self):
        win = make_window()
        win.lock_all(0)
        assert win.epoch_open(0)
        assert not win.epoch_open(1)
        with pytest.raises(EpochError):
            win.read(1, 0, 0, 1)

    def test_lock_unlock_cycle(self):
        win = make_window()
        win.lock_all(0)
        win.unlock_all(0)
        win.lock_all(0)
        assert win.epoch_open(0)


class TestDataMovement:
    def test_read_returns_copy(self):
        win = make_window()
        win.lock_all(0)
        data = win.read(0, 0, 0, 3)
        data[0] = 999
        assert win.local_part(0)[0] == 0

    def test_out_of_bounds_read_rejected(self):
        win = make_window()
        win.lock_all(0)
        with pytest.raises(WindowError):
            win.read(0, 1, 3, 10)
        with pytest.raises(WindowError):
            win.read(0, 1, -1, 2)
        with pytest.raises(WindowError):
            win.read(0, 1, 0, -2)

    def test_zero_length_read_ok(self):
        win = make_window()
        win.lock_all(0)
        assert win.read(0, 1, 5, 0).shape == (0,)

    def test_invalid_target_rank(self):
        win = make_window()
        win.lock_all(0)
        with pytest.raises(WindowError):
            win.read(0, 7, 0, 1)

    def test_write_roundtrip(self):
        win = make_window()
        win.lock_all(0)
        win.write(0, 1, 2, np.array([7, 8], dtype=np.int32))
        np.testing.assert_array_equal(win.local_part(1), [100, 101, 7, 8, 104])

    def test_write_out_of_bounds_rejected(self):
        win = make_window()
        win.lock_all(0)
        with pytest.raises(WindowError):
            win.write(0, 1, 4, np.array([1, 2], dtype=np.int32))

    def test_local_part_is_view(self):
        win = make_window()
        win.local_part(0)[0] = 42
        win.lock_all(1)
        assert win.read(1, 0, 0, 1)[0] == 42


class TestWindowRegistry:
    def test_add_and_lookup(self):
        reg = WindowRegistry()
        win = make_window()
        reg.add(win)
        assert reg["w"] is win
        assert "w" in reg

    def test_duplicate_name_rejected(self):
        reg = WindowRegistry()
        reg.add(make_window())
        with pytest.raises(WindowError):
            reg.add(make_window())

    def test_unknown_name_rejected(self):
        with pytest.raises(WindowError):
            WindowRegistry()["nope"]

    def test_lock_all_unlock_all(self):
        reg = WindowRegistry()
        a, b = make_window(), Window("x", [np.zeros(2, dtype=np.int8)] * 2)
        reg.add(a)
        reg.add(b)
        reg.lock_all(0)
        assert a.epoch_open(0) and b.epoch_open(0)
        reg.unlock_all(0)
        assert not a.epoch_open(0) and not b.epoch_open(0)
