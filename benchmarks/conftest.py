"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table/figure of the paper at a
trimmed scale (the full sweeps are run by ``python -m
repro.analysis.runner --all``; these benchmarks keep the harness cheap
enough for CI while still executing the identical code paths).
"""

from __future__ import annotations

import pytest

from repro.graph.datasets import load_dataset


@pytest.fixture(scope="session")
def rmat_s21():
    return load_dataset("rmat-s21-ef16")


@pytest.fixture(scope="session")
def rmat_s20_ef16():
    return load_dataset("rmat-s20-ef16")


@pytest.fixture(scope="session")
def livejournal_small():
    return load_dataset("livejournal", scale=0.25)


@pytest.fixture(scope="session")
def facebook():
    return load_dataset("facebook-circles")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
