"""Micro-benchmarks of the batched cache replay against the scalar loop.

Real wall-clock timings of the hottest path this repo has: cached
distributed LCC/TC.  The ``loop`` variants run the per-edge reference
oracle, the ``batched`` variants the vectorized replay of
:mod:`repro.core.replay` — parity between the two is pinned elsewhere
(``tests/core/test_cached_fast_parity.py``); here we only watch the
speed.  ``repro bench`` records the same comparison into
``BENCH_kernels.json`` per PR.
"""

import numpy as np
import pytest

from repro.clampi.cache import BatchStream, ClampiCache, ClampiConfig
from repro.core.config import CacheSpec, LCCConfig
from repro.graph.generators import powerlaw_configuration
from repro.runtime.window import Window
from repro.session import Session


@pytest.fixture(scope="module")
def graph():
    return powerlaw_configuration(768, 6000, seed=7)


@pytest.fixture(scope="module")
def cache_spec(graph):
    return CacheSpec.relative(graph.nbytes, 0.5, 1.0)


def _config(cache, fast_path):
    return LCCConfig(nranks=8, threads=4, cache=cache, fast_path=fast_path)


@pytest.mark.parametrize("kernel", ["lcc", "tc"])
@pytest.mark.parametrize("fast_path", [False, True],
                         ids=["loop", "batched"])
def test_cached_warm_query(benchmark, graph, cache_spec, kernel, fast_path):
    with Session(graph, _config(cache_spec, fast_path)) as session:
        session.run(kernel, keep_cache=True)  # warm the caches
        result = benchmark(session.run, kernel, keep_cache=True)
    assert result.global_triangles > 0


def test_access_batch_hit_stream(benchmark):
    """A pure-hit stream through access_batch (the vectorized best case)."""
    window = Window("adj", [np.arange(4096, dtype=np.int64)])
    window.lock_all(0)
    cache = ClampiCache(window, 0, ClampiConfig(capacity_bytes=1 << 20,
                                                nslots=8192))
    rng = np.random.default_rng(1)
    offsets = rng.integers(0, 4000, 20000).astype(np.int64)
    stream = BatchStream(np.zeros(20000, dtype=np.int64), offsets,
                         np.full(20000, 8, dtype=np.int64))
    cache.access_batch(stream=stream)  # first pass inserts everything

    def replay():
        return cache.access_batch(stream=stream)

    durations, hits = benchmark(replay)
    assert bool(hits.all())
