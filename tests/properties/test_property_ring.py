"""Property tests: consistent-hash ring stability under membership churn.

The two bounds that make consistent hashing worth having:

* removing one of ``N`` nodes remaps **only the keys it owned** — every
  other key keeps its owner (exact, no slack);
* adding a node to ``N`` moves at most ~``2 * K / (N+1)`` of ``K`` keys
  (expected ``K/(N+1)``; the factor-2 ceiling absorbs vnode variance),
  and every moved key moves **to** the new node, never between old ones.

Key populations are derived from :func:`repro.utils.rng.derive_seed`, so
each example — and the whole suite — is deterministic across runs and
processes (the ring hashes ``repr(key)`` with blake2b, never the salted
builtin ``hash``).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shardstore import HashRing
from repro.utils.rng import derive_seed


def make_keys(seed: int, k: int) -> list:
    """Session-key-shaped tuples from a derived, reproducible stream."""
    rng = np.random.default_rng(derive_seed(seed, "ring-keys", k))
    names = rng.integers(0, 10_000, size=k)
    variants = rng.integers(0, 3, size=k)
    return [(f"g{int(name)}-{i}",
             () if v == 0 else ((("method", "ssi"),) if v == 1
                                else (("method", "binary"),)))
            for i, (name, v) in enumerate(zip(names, variants))]


ring_cases = st.tuples(
    st.integers(min_value=2, max_value=6),      # nodes
    st.integers(min_value=0, max_value=2**31),  # key-population seed
)


@given(ring_cases)
@settings(max_examples=30, deadline=None)
def test_removing_a_node_remaps_only_its_keys(case):
    nnodes, seed = case
    keys = make_keys(seed, 300)
    nodes = [f"r{i}" for i in range(nnodes)]
    ring = HashRing(nodes)
    before = ring.table(keys)
    victim = nodes[seed % nnodes]
    ring.remove(victim)
    after = ring.table(keys)
    for key in keys:
        if before[key] == victim:
            assert after[key] != victim          # its keys moved somewhere
        else:
            assert after[key] == before[key]     # everyone else: untouched


@given(ring_cases)
@settings(max_examples=30, deadline=None)
def test_adding_a_node_moves_at_most_its_fair_share(case):
    nnodes, seed = case
    keys = make_keys(seed, 500)
    ring = HashRing([f"r{i}" for i in range(nnodes)])
    before = ring.table(keys)
    ring.add("newcomer")
    after = ring.table(keys)
    moved = [key for key in keys if after[key] != before[key]]
    # Every moved key moved TO the newcomer — adds never shuffle the rest.
    assert all(after[key] == "newcomer" for key in moved)
    assert len(moved) <= 2 * len(keys) / (nnodes + 1)


@given(ring_cases)
@settings(max_examples=15, deadline=None)
def test_placement_is_deterministic(case):
    nnodes, seed = case
    keys = make_keys(seed, 100)
    nodes = [f"r{i}" for i in range(nnodes)]
    assert HashRing(nodes).table(keys) == \
        HashRing(list(reversed(nodes))).table(keys)
