#!/usr/bin/env python
"""Shards, routing, replicas: the distributed store in action.

One catalog graph is cut into partition-aligned shards, each with its
own version chain, and replicated for read scale:

1. **one commit, k shards, one version** — a batch touching several
   shards commits atomically behind the cross-shard barrier, and every
   commit is digest-proved bit-identical to what an unsharded
   ``GraphStore`` would hold;
2. **version vectors** — each shard's chain advances only when a commit
   touches it; ``check_version_vector`` re-derives the vector from the
   commit log and must find nothing;
3. **consistent-hash routing** — session keys place on replicas via a
   blake2b ring, so removing a replica re-routes only its own keys;
4. **convergence by digest, divergence healed** — replicas apply every
   commit independently and prove equality by chained history digest;
   a write that bypasses the set is detected, the replica evicted,
   re-seeded from the primary, and rejoined;
5. **failover mid-burst** — killing a replica during a read burst moves
   its queries to survivors; answers are bit-identical to an
   undisturbed run.

    python examples/sharding.py
"""

from repro.dynamic import random_update_batch
from repro.graph import load_dataset
from repro.graphstore import GraphStore, graph_digest
from repro.serve import ServeConfig
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.shardstore import ReplicaSet, ShardedGraphStore
from repro.utils.rng import derive_seed


def main() -> None:
    graph = load_dataset("facebook-circles", scale=0.6)
    name = graph.name

    # -- 1/2: sharded commits, digest-proved against the unsharded store
    sharded = ShardedGraphStore({name: graph}, nshards=4, nranks=8)
    plain = GraphStore({name: graph})
    plan = sharded.plan(name)
    print(f"{sharded}")
    print("shard ranges:", ", ".join(
        f"s{s}=[{plan.range_of(s)[0]},{plan.range_of(s)[1]})"
        for s in range(plan.nshards)), "\n")

    for r in range(3):
        batch = random_update_batch(plain.graph(name), n_edges=24,
                                    seed=derive_seed(1, "example", r))
        su = sharded.apply(name, batch)
        uu = plain.apply(name, batch)
        identical = graph_digest(su.graph) == graph_digest(uu.graph)
        print(f"commit {su.version}: shards {sorted(su.shards)}  "
              f"vector {list(sharded.version_vector(name))}  "
              f"bit-identical {identical}")
    assert sharded.check_version_vector(name) == []
    print("version vector re-derives from the commit log: OK\n")

    # -- 3/4: replicas converge by digest; divergence is healed
    replicas = ReplicaSet({name: graph}, replicas=3, nshards=4, nranks=8)
    for r in range(2):
        replicas.commit(name, random_update_batch(
            replicas.primary.graph(name), n_edges=16,
            seed=derive_seed(2, "example", r)))
    print(f"replicas {replicas.live_ids()} converged: "
          f"{replicas.verify() == []}")

    rogue = replicas.live_ids()[0]
    replicas.replica(rogue).apply(name, random_update_batch(
        replicas.replica(rogue).graph(name), n_edges=4, seed=99))
    print(f"rogue write on {rogue}: divergent = {replicas.divergent()}")
    healed = replicas.heal()
    print(f"healed {healed} (reseeds={replicas.reseeds}), converged "
          f"again: {replicas.verify() == []}\n")

    # -- 5: kill a replica mid-burst; answers must not move
    catalog = default_catalog(scale=0.3)
    burst = generate_workload(WorkloadSpec(
        n_queries=30, arrival_rate=3000.0, n_tenants=8,
        graphs=tuple(catalog), kernels=("lcc",), update_mix=0.0, seed=5))
    config = ServeConfig(nranks=8, threads=4, pool_capacity=3)

    undisturbed = ReplicaSet(catalog, replicas=3, nshards=4,
                             nranks=8).serve_reads(burst, config)
    victim = max(undisturbed.replica_counts,
                 key=lambda rid: (undisturbed.replica_counts[rid], rid))
    rs = ReplicaSet(catalog, replicas=3, nshards=4, nranks=8)
    qids = sorted(r.qid for r in burst)
    faulted = rs.serve_reads(burst, config, kill_replica=victim,
                             kill_at=qids[len(qids) // 3],
                             rejoin_at=qids[2 * len(qids) // 3])
    print(f"killed {faulted.killed} mid-burst, rejoined: "
          f"{faulted.rejoined}")
    print(f"queries per replica: {dict(sorted(faulted.replica_counts.items()))}")
    print(f"answers identical to the undisturbed run: "
          f"{faulted.digests() == undisturbed.digests()}")


if __name__ == "__main__":
    main()
