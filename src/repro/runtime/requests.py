"""Request objects yielded by rank programs to the engine.

A rank program that needs two-sided communication or a collective is written
as a generator; it ``yield``s one of these requests and the engine resumes
it with the operation's result.  One-sided RMA (get/put) never blocks on a
peer and therefore needs no request object — it is a plain method call on
:class:`~repro.runtime.context.SimContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence


@dataclass(frozen=True)
class SendRequest:
    """Post an (eager, non-blocking) message to ``dest``.

    ``nbytes`` drives the cost model; ``payload`` is delivered verbatim to
    the matching receive.  The engine resumes the sender immediately after
    charging the local injection overhead.
    """

    dest: int
    payload: Any
    nbytes: int
    tag: int = 0


@dataclass(frozen=True)
class RecvRequest:
    """Block until a message from ``source`` with ``tag`` arrives."""

    source: int
    tag: int = 0


@dataclass(frozen=True)
class BarrierRequest:
    """Block until every rank reaches its matching barrier."""


@dataclass(frozen=True)
class AlltoallvRequest:
    """Personalized all-to-all exchange (the TriC communication pattern).

    ``payloads[j]`` / ``nbytes[j]`` is what this rank sends to rank ``j``
    (entry for the own rank is permitted and delivered locally for free).
    The engine resumes the rank with the list of received payloads, indexed
    by source rank.
    """

    payloads: Sequence[Any]
    nbytes: Sequence[int]


@dataclass(frozen=True)
class AllreduceRequest:
    """Reduce a scalar across ranks (sum); resumes with the global value."""

    value: float
    nbytes: int = 8


Request = (SendRequest, RecvRequest, BarrierRequest, AlltoallvRequest, AllreduceRequest)
