"""Simulated distributed-memory runtime (the MPI/RMA substrate).

The paper runs on Cray XC50 nodes with an Aries interconnect and uses MPI-3
RMA passive-target one-sided operations.  Neither real MPI nor the hardware
is available here, so this package provides a **deterministic discrete-event
simulation** of the same programming model:

* :class:`~repro.runtime.network.NetworkModel` — LogGP-style cost model for
  one-sided gets/puts and two-sided messages (``t(s) = alpha + beta * s``,
  exactly the model the paper itself uses to reason about remote reads in
  Section IV-D1).
* :class:`~repro.runtime.window.Window` — an RMA window exposing one NumPy
  array per rank, with passive-target epoch semantics
  (``lock_all``/``flush``/``unlock_all``) and bounds checking.
* :class:`~repro.runtime.context.SimContext` — the per-rank handle: a
  virtual clock plus ``get``/``send``/``recv``/collective operations.
* :class:`~repro.runtime.engine.Engine` — runs one generator (or plain
  function) per rank; fully asynchronous algorithms never block and are run
  directly, synchronizing baselines (TriC) yield communication requests that
  the engine matches and times.

Reported job runtime is the **maximum over rank clocks**, matching the
paper's methodology of reporting the longest-running node.
"""

from repro.runtime.network import NetworkModel, MemoryModel
from repro.runtime.compute import ComputeModel
from repro.runtime.window import Window, WindowRegistry
from repro.runtime.context import SimContext
from repro.runtime.engine import Engine, RunOutcome
from repro.runtime.trace import RankTrace, OpKind

__all__ = [
    "NetworkModel",
    "MemoryModel",
    "ComputeModel",
    "Window",
    "WindowRegistry",
    "SimContext",
    "Engine",
    "RunOutcome",
    "RankTrace",
    "OpKind",
]
