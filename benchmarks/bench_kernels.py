"""Wall-clock micro-benchmarks of the intersection kernels.

These are real (not simulated) timings of the NumPy counting kernels —
the one place where pytest-benchmark's statistics are measuring actual
compute rather than regenerating a paper artifact.
"""

import numpy as np
import pytest

from repro.core.intersect import (
    binary_search_count,
    count_common_above,
    hybrid_count,
    ssi_count,
)


def make_pair(rng, la, lb, universe):
    a = np.unique(rng.integers(0, universe, la)).astype(np.int32)
    b = np.unique(rng.integers(0, universe, lb)).astype(np.int32)
    return a, b


@pytest.fixture(scope="module")
def balanced_pair():
    return make_pair(np.random.default_rng(0), 512, 512, 4096)


@pytest.fixture(scope="module")
def skewed_pair():
    return make_pair(np.random.default_rng(0), 32, 65536, 1 << 20)


def test_ssi_balanced(benchmark, balanced_pair):
    a, b = balanced_pair
    assert benchmark(ssi_count, a, b) >= 0


def test_binary_balanced(benchmark, balanced_pair):
    a, b = balanced_pair
    assert benchmark(binary_search_count, a, b) >= 0


def test_hybrid_balanced(benchmark, balanced_pair):
    a, b = balanced_pair
    assert benchmark(hybrid_count, a, b) >= 0


def test_ssi_skewed(benchmark, skewed_pair):
    a, b = skewed_pair
    assert benchmark(ssi_count, a, b) >= 0


def test_binary_skewed(benchmark, skewed_pair):
    a, b = skewed_pair
    assert benchmark(binary_search_count, a, b) >= 0


def test_hybrid_skewed(benchmark, skewed_pair):
    a, b = skewed_pair
    assert benchmark(hybrid_count, a, b) >= 0


def test_count_above(benchmark, balanced_pair):
    a, b = balanced_pair
    assert benchmark(count_common_above, a, b, 2048) >= 0
