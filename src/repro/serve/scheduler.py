"""Pluggable serving schedulers: which queued query runs next?

A scheduler never invents or drops work — it only picks, among the
requests that have *arrived* and are waiting, the one the engine should
serve next.  Because warm caches change timing but never answers (pinned
by the session test suite), every policy produces bit-identical per-query
results; what differs is the order, and with it the warm-hit fraction,
the session-pool churn, and therefore latency and throughput.

* :class:`FIFOScheduler` — arrival order, the fairness baseline.
* :class:`CacheAffinityScheduler` — batches requests sharing a resident
  cluster (same :attr:`~repro.serve.request.QueryRequest.session_key`):
  stick with the key served last (its partition is resident and its
  CLaMPI caches warm) until it has no queued work or ``max_batch``
  consecutive queries have been served, then switch to the queued key
  with the best (resident, backlog, age) score.  Batching amortizes one
  cold partition + compulsory-miss pass over a run of warm queries and
  keeps hot sessions from being evicted by one-off tail keys.

With update traffic in the mix, an update is a **barrier for its graph**
(:func:`eligible_requests`): requests on the graph — *any* variant's
session key, since a committed update advances the graph's single
:class:`~repro.graphstore.store.GraphVersion` for all of them — that
arrived before it must drain first, requests after it must wait.  So
every query observes the graph version its arrival order dictates,
regardless of the scheduling policy, and answers stay
scheduler-independent.  The engine pre-filters the queue through this
fence before any ``pick``, making the guarantee structural rather than
per-policy; and when several updates for one graph sit queued
back-to-back, :func:`coalescible_updates` names the ones the engine may
fold into a single store flush.
"""

from __future__ import annotations

from repro.serve.pool import SessionPool
from repro.serve.request import QueryRequest, SessionKey, arrival_order
from repro.utils.errors import ConfigError
from repro.utils.rng import derive_seed, make_rng


def _shard_set(req):
    """The shard set a request's fence covers; ``None`` = whole graph.

    Queries have no ``shards`` attribute (a kernel reads the entire
    graph), and an un-annotated or empty-set update conservatively
    fences everything — both resolve to ``None``.  The ``or None`` guard
    is deliberately redundant with the normalization in
    :meth:`~repro.serve.request.UpdateRequest.__post_init__`: a
    hand-built request carrying ``shards=frozenset()`` through
    ``object.__setattr__`` or a duck-typed stand-in must still get the
    whole-graph fence here — an empty set means "touches nothing", and
    letting it overtake a concurrent query would desynchronize that
    query's version observation from its arrival order.
    """
    return getattr(req, "shards", None) or None


def _conflicts(a, b) -> bool:
    """Must ``a`` and ``b`` (same graph) serialize in arrival order?

    Reads commute with reads; anything involving a write conflicts
    unless both sides carry *disjoint* shard sets — the only case the
    per-(graph, shard-set) fence lets overtake.
    """
    if not (a.is_update or b.is_update):
        return False
    sa, sb = _shard_set(a), _shard_set(b)
    return sa is None or sb is None or bool(sa & sb)


def eligible_requests(queued: list, inflight: list = ()) -> list:
    """The subset of queued requests the update fences allow.

    Per **graph** — not per session key: an update advances the graph's
    one store version, visible to every variant's resident session — a
    request is admitted iff no *conflicting* request ahead of it
    (arrival order) exists.  Without shard annotations that reduces to
    the classic per-graph fence: queries flow up to the first queued
    update, an update is admitted only as its graph's earliest queued
    request.  With annotations (:attr:`~repro.serve.request
    .UpdateRequest.shards`), updates touching disjoint shard sets of one
    graph stop conflicting and may overtake each other — per-shard
    version chains are order-independent across disjoint commits, so
    answers stay scheduler-independent.

    ``inflight`` widens the conflict universe without widening the
    candidate set: the cooperative engine passes the requests currently
    executing, holding a coalescing window, or deferred by admission
    control.  They block conflicting younger candidates exactly like
    queued requests, but are never returned.  For the serial engine
    (``inflight=()``), each graph's earliest request conflicts with
    nothing ahead of it, so the result is never empty for a non-empty
    queue.
    """
    by_graph: dict[str, list] = {}
    for req in queued:
        by_graph.setdefault(req.graph, []).append(req)
    blockers: dict[str, list] = {}
    for req in inflight:
        blockers.setdefault(req.graph, []).append(req)
    out = []
    for graph, reqs in by_graph.items():
        reqs.sort(key=arrival_order)
        for i, req in enumerate(reqs):
            ahead = reqs[:i] + [b for b in blockers.get(graph, ())
                                if arrival_order(b) < arrival_order(req)]
            if not any(_conflicts(req, other) for other in ahead):
                out.append(req)
    return out


def coalescible_updates(queued: list, head) -> list:
    """Queued updates that may merge into ``head``'s store flush.

    ``head`` must be an update the fence just admitted.  The mergeable
    set is the run of *updates* directly following it in the graph's
    arrival order: the run stops at the first queued query, whose answer
    must observe only the versions committed before it arrived.  Order
    within the run is arrival order, so last-writer-wins coalescing
    equals sequential application.  Under shard-set fencing an admitted
    update need not lead its graph's queue (an earlier disjoint-shard
    update may still be waiting); coalescing across such a gap would
    reorder the skipped request's commit into the flush, so the merge
    set is simply empty then.
    """
    run = sorted((r for r in queued if r.graph == head.graph),
                 key=arrival_order)
    if not run or run[0] is not head:
        return []
    out = []
    for req in run[1:]:
        if not req.is_update:
            break
        out.append(req)
    return out


class Scheduler:
    """Base policy; subclasses implement :meth:`pick`."""

    #: Registry name (CLI / reports).
    name = "base"

    def reset(self) -> None:
        """Forget cross-request state before a fresh workload."""

    def pick(self, queued: list[QueryRequest], last_key: SessionKey | None,
             pool: SessionPool) -> QueryRequest:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class FIFOScheduler(Scheduler):
    """Serve strictly in arrival order (qid breaks simultaneous ties)."""

    name = "fifo"

    def pick(self, queued: list[QueryRequest], last_key: SessionKey | None,
             pool: SessionPool) -> QueryRequest:
        if not queued:
            raise ConfigError("pick() called with an empty queue")
        return min(queued, key=arrival_order)


class CacheAffinityScheduler(Scheduler):
    """Batch same-session queries to maximize warm CLaMPI hits.

    ``max_batch`` bounds how long one key can monopolize the server while
    other tenants wait (anti-starvation); after a forced switch the old
    key competes again like any other.
    """

    name = "affinity"

    def __init__(self, max_batch: int = 16):
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        self._streak = 0

    def reset(self) -> None:
        self._streak = 0

    def pick(self, queued: list[QueryRequest], last_key: SessionKey | None,
             pool: SessionPool) -> QueryRequest:
        if not queued:
            raise ConfigError("pick() called with an empty queue")
        by_key: dict[SessionKey, list[QueryRequest]] = {}
        for req in queued:
            by_key.setdefault(req.session_key, []).append(req)

        if last_key in by_key and (self._streak < self.max_batch
                                   or len(by_key) == 1):
            key = last_key
        else:
            # Switch: prefer keys whose session is already resident (warm
            # for free), then the deepest backlog (best amortization of a
            # cold build), then the longest-waiting request (aging).  A
            # forced switch (streak cap) must not re-pick the last key.
            candidates = {k: reqs for k, reqs in by_key.items()
                          if k != last_key} or by_key

            def score(k: SessionKey):
                reqs = candidates[k]
                return (0 if k in pool else 1, -len(reqs),
                        min(arrival_order(r) for r in reqs))

            key = min(candidates, key=score)

        self._streak = self._streak + 1 if key == last_key else 1
        return min(by_key[key], key=arrival_order)


class InterleaveScheduler(Scheduler):
    """Pick uniformly at random (seeded) among the eligible requests.

    The adversary of the parity test battery: every ``pick`` is a
    coin-flip over whatever the fences admit, so driving one workload
    through many seeds explores many cooperative interleavings — and
    every one of them must produce the serial oracle's digests and
    version histories.  It deliberately optimizes nothing; any policy
    an operator would actually deploy sits between this and FIFO, so
    pinning the extremes pins the space.
    """

    name = "interleave"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = make_rng(derive_seed(seed, "interleave-sched"))

    def reset(self) -> None:
        self._rng = make_rng(derive_seed(self.seed, "interleave-sched"))

    def pick(self, queued: list[QueryRequest], last_key: SessionKey | None,
             pool: SessionPool) -> QueryRequest:
        if not queued:
            raise ConfigError("pick() called with an empty queue")
        ordered = sorted(queued, key=arrival_order)
        return ordered[int(self._rng.integers(len(ordered)))]


#: Schedulers selectable by name (CLI, analysis, tests).
SCHEDULERS = {
    FIFOScheduler.name: FIFOScheduler,
    CacheAffinityScheduler.name: CacheAffinityScheduler,
    InterleaveScheduler.name: InterleaveScheduler,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ConfigError(f"unknown scheduler {name!r}; "
                          f"expected one of {sorted(SCHEDULERS)}") from None
    return cls(**kwargs)
