"""Bench: regenerate Figure 8 — degree-centrality eviction scores.

Acceptance shape: the degree score never loses to stock CLaMPI scores on
miss rate, at any node count (the paper measures 14-36% improvement on
remote-read time; the magnitude is scale-compressed here).
"""

from conftest import run_once

from repro.analysis.experiments import exp_fig8


def test_fig8(benchmark):
    tables = run_once(benchmark, exp_fig8.run, fast=True)
    table = tables[0]
    for row in table.rows:
        miss_default = float(row[4])
        miss_degree = float(row[5])
        assert miss_degree <= miss_default + 1e-6, (
            f"degree scores lost at {row[0]} nodes")
