"""Tests for the distributed asynchronous LCC (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.api import compute_lcc
from repro.core.config import CacheSpec, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import lcc_local, triangle_count_local
from repro.graph.generators import powerlaw_configuration, rmat

from tests.helpers import make_graph_suite


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_matches_local_any_rank_count(self, nranks):
        g = rmat(7, 8, seed=3)
        res = run_distributed_lcc(g, LCCConfig(nranks=nranks))
        np.testing.assert_allclose(res.lcc, lcc_local(g), atol=1e-12)

    @pytest.mark.parametrize("idx", range(6))
    def test_matches_local_all_graphs(self, idx):
        g = make_graph_suite()[idx]
        res = run_distributed_lcc(g, LCCConfig(nranks=4))
        np.testing.assert_allclose(res.lcc, lcc_local(g), atol=1e-12)

    @pytest.mark.parametrize("method", ["ssi", "binary", "hybrid"])
    def test_all_methods_agree(self, method):
        g = rmat(7, 8, seed=3)
        res = run_distributed_lcc(g, LCCConfig(nranks=4, method=method))
        np.testing.assert_allclose(res.lcc, lcc_local(g), atol=1e-12)

    @pytest.mark.parametrize("partition", ["block", "cyclic"])
    def test_partitions_agree(self, partition):
        g = rmat(7, 8, seed=3)
        res = run_distributed_lcc(g, LCCConfig(nranks=4, partition=partition))
        np.testing.assert_allclose(res.lcc, lcc_local(g), atol=1e-12)

    def test_overlap_does_not_change_results(self):
        g = rmat(7, 8, seed=3)
        a = run_distributed_lcc(g, LCCConfig(nranks=4, overlap=True))
        b = run_distributed_lcc(g, LCCConfig(nranks=4, overlap=False))
        np.testing.assert_array_equal(a.lcc, b.lcc)
        np.testing.assert_array_equal(a.triangles_per_vertex,
                                      b.triangles_per_vertex)

    def test_cached_identical_to_uncached(self):
        g = powerlaw_configuration(256, 2048, seed=5)
        cfg = LCCConfig(nranks=4)
        plain = run_distributed_lcc(g, cfg)
        for score in ("default", "degree", "lru"):
            cached = run_distributed_lcc(g, cfg.replace(
                cache=CacheSpec.paper_split(1 << 18, g.n, score=score)))
            np.testing.assert_array_equal(plain.lcc, cached.lcc)

    def test_global_triangles_from_triplets(self):
        g = rmat(7, 8, seed=3)
        res = run_distributed_lcc(g, LCCConfig(nranks=4))
        assert res.global_triangles == triangle_count_local(g)

    def test_directed_graph(self):
        g = powerlaw_configuration(128, 700, seed=5, directed=True)
        res = run_distributed_lcc(g, LCCConfig(nranks=4))
        np.testing.assert_allclose(res.lcc, lcc_local(g), atol=1e-12)


class TestTiming:
    def test_overlap_is_never_slower(self):
        g = rmat(7, 8, seed=3)
        a = run_distributed_lcc(g, LCCConfig(nranks=4, overlap=True))
        b = run_distributed_lcc(g, LCCConfig(nranks=4, overlap=False))
        assert a.time <= b.time

    def test_more_ranks_less_time(self):
        g = rmat(8, 8, seed=3)
        t4 = run_distributed_lcc(g, LCCConfig(nranks=4)).time
        t16 = run_distributed_lcc(g, LCCConfig(nranks=16)).time
        assert t16 < t4

    def test_caching_reduces_comm_time(self):
        g = powerlaw_configuration(512, 4096, seed=5)
        cfg = LCCConfig(nranks=4)
        plain = run_distributed_lcc(g, cfg)
        cached = run_distributed_lcc(g, cfg.replace(
            cache=CacheSpec.paper_split(1 << 20, g.n)))
        assert cached.comm_time < plain.comm_time
        assert cached.adj_cache_stats["hit_rate"] > 0.3

    def test_remote_fraction_grows_with_ranks(self):
        g = rmat(8, 8, seed=3)
        f4 = run_distributed_lcc(g, LCCConfig(nranks=4)).outcome.summary()[
            "remote_fraction"]
        f16 = run_distributed_lcc(g, LCCConfig(nranks=16)).outcome.summary()[
            "remote_fraction"]
        assert f16 > f4

    def test_single_rank_no_comm(self):
        g = rmat(7, 8, seed=3)
        res = run_distributed_lcc(g, LCCConfig(nranks=1))
        assert res.outcome.total("n_remote_gets") == 0
        assert res.comm_time == 0.0


class TestDeterminism:
    def test_bitwise_reproducible(self):
        g = rmat(7, 8, seed=3)
        cfg = LCCConfig(nranks=4, cache=CacheSpec.paper_split(1 << 16, g.n))
        a = run_distributed_lcc(g, cfg)
        b = run_distributed_lcc(g, cfg)
        assert a.time == b.time
        np.testing.assert_array_equal(a.lcc, b.lcc)
        assert a.adj_cache_stats == b.adj_cache_stats


class TestApi:
    def test_compute_lcc_local_path(self):
        g = rmat(7, 8, seed=3)
        scores = compute_lcc(g)
        np.testing.assert_allclose(scores, lcc_local(g))

    def test_compute_lcc_distributed_path(self):
        g = rmat(7, 8, seed=3)
        res = compute_lcc(g, LCCConfig(nranks=2))
        np.testing.assert_allclose(res.lcc, lcc_local(g), atol=1e-12)
