"""Typed metrics: registry semantics and the CacheStats delegation."""

import pytest

from repro.clampi.stats import CacheStats
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    c = Counter("requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("depth")
    g.set(3.0)
    g.inc(2.0)
    g.dec(4.0)
    assert g.value == 1.0


def test_histogram_quantiles_exact():
    h = Histogram("latency")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 10.0
    assert snap["min"] == 1.0
    assert snap["max"] == 4.0
    assert snap["mean"] == 2.5
    assert 1.0 <= snap["p50"] <= 3.0
    assert snap["p99"] <= 4.0


def test_registry_get_or_create_and_type_conflict():
    reg = MetricsRegistry()
    c1 = reg.counter("x")
    assert reg.counter("x") is c1
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_registry_snapshot_registration_order():
    reg = MetricsRegistry()
    reg.counter("b").inc(2)
    reg.gauge("a").set(1.5)
    reg.histogram("h").observe(1.0)
    snap = reg.snapshot()
    assert list(snap) == ["b", "a", "h"]
    assert snap["b"] == 2
    assert snap["a"] == 1.5
    assert snap["h"]["count"] == 1


def test_cache_stats_snapshot_is_registry_backed_and_byte_identical():
    stats = CacheStats(hits=7, misses=3, compulsory_misses=2,
                       capacity_evictions=1, invalidations=4,
                       invalidated_bytes=512, rekeys=2, rekeyed_bytes=128,
                       bytes_served_from_cache=2048, bytes_fetched=1024,
                       mgmt_time=0.25)
    snap = stats.snapshot()
    # The historical hand-built dict, literally.
    expected = {
        "hits": 7, "misses": 3,
        "hit_rate": 0.7, "miss_rate": 0.3,
        "compulsory_miss_rate": 0.2,
        "capacity_evictions": 1, "conflict_evictions": 0,
        "hash_conflicts": 0, "insert_failures": 0, "flushes": 0,
        "invalidations": 4, "invalidated_bytes": 512,
        "rekeys": 2, "rekeyed_bytes": 128,
        "bytes_served_from_cache": 2048, "bytes_fetched": 1024,
        "mgmt_time": 0.25,
    }
    assert snap == expected
    assert list(snap) == list(CacheStats.SNAPSHOT_KEYS)
    reg = stats.as_registry(prefix="cache.")
    assert reg.snapshot()["cache.hits"] == 7
