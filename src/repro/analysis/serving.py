"""Serving benchmark: FIFO vs cache-affinity scheduling, recorded.

``repro serve --bench`` (and :func:`run_serving_bench`) replays the same
deterministic multi-tenant workload through both schedulers, on the
Zipf-skewed popularity the paper targets and on the uniform contrast, and
writes ``BENCH_serve.json`` at the repo root.  The committed report is
the serving layer's trajectory point: it must show

* **bit-identical per-query answers** between schedulers (scheduling
  changes order and timing, never results), and
* the **cache-affinity scheduler beating FIFO on aggregate throughput**
  for the skewed workload — the paper's per-query reuse effect turned
  into a system-level win.

The simulated numbers (throughput, latency, warm fractions, pool churn)
are deterministic for a given seed; only the ``wall_clock_s`` fields vary
across machines.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.benchreport import write_report
from repro.serve.engine import ServeConfig, ServingEngine, answers_identical
from repro.serve.scheduler import make_scheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload

SERVE_SCHEMA_VERSION = 1

#: Keys every serving report carries (pinned by tests and the CLI).
SERVE_REPORT_KEYS = ("schema_version", "quick", "serve_config", "catalog",
                     "workloads")

#: The two popularity regimes the committed report contrasts.
WORKLOAD_NAMES = ("zipf", "uniform")


def bench_workload_spec(graphs: tuple[str, ...],
                        quick: bool = False) -> WorkloadSpec:
    """The recorded workload: saturating Poisson traffic, Zipf popularity."""
    if quick:
        return WorkloadSpec(n_queries=48, arrival_rate=2000.0, n_tenants=8,
                            graphs=graphs, seed=7)
    return WorkloadSpec(n_queries=240, arrival_rate=2000.0, n_tenants=16,
                        graphs=graphs, seed=7)


def bench_serve_config() -> ServeConfig:
    """Contended pool: fewer resident slots than distinct session keys."""
    return ServeConfig(nranks=8, threads=4, pool_capacity=3)


def run_serving_bench(quick: bool = False,
                      schedulers: tuple[str, ...] = ("fifo", "affinity")
                      ) -> dict[str, Any]:
    """Produce the full serving report dict (see module docstring)."""
    catalog = default_catalog(scale=0.4 if quick else 1.0)
    config = bench_serve_config()
    spec = bench_workload_spec(tuple(catalog), quick)
    report: dict[str, Any] = {
        "schema_version": SERVE_SCHEMA_VERSION,
        "quick": quick,
        "serve_config": {
            "nranks": config.nranks,
            "threads": config.threads,
            "pool_capacity": config.pool_capacity,
            "pool_policy": config.pool_policy,
        },
        "catalog": {name: {"vertices": g.n, "edges": g.m}
                    for name, g in catalog.items()},
        "workloads": {},
    }
    for wname in WORKLOAD_NAMES:
        wspec = spec if wname == "zipf" else spec.uniform()
        requests = generate_workload(wspec)
        outcomes = {}
        for sname in schedulers:
            engine = ServingEngine(catalog, config, make_scheduler(sname))
            outcomes[sname] = engine.serve(requests)
        row: dict[str, Any] = {
            "n_queries": wspec.n_queries,
            "arrival_rate_qps": wspec.arrival_rate,
            "n_tenants": wspec.n_tenants,
            "tenant_skew": wspec.tenant_skew,
            "graph_skew": wspec.graph_skew,
            "seed": wspec.seed,
            "schedulers": {s: o.aggregates for s, o in outcomes.items()},
        }
        if "fifo" in outcomes and "affinity" in outcomes:
            fifo, aff = outcomes["fifo"], outcomes["affinity"]
            row["results_identical"] = answers_identical(fifo, aff)
            row["throughput_ratio"] = (
                aff.aggregates["throughput_qps"]
                / fifo.aggregates["throughput_qps"])
            row["latency_mean_ratio"] = (
                aff.aggregates["latency_mean_s"]
                / fifo.aggregates["latency_mean_s"])
        report["workloads"][wname] = row
    return report


def check_serve_report(report: Mapping[str, Any]) -> list[str]:
    """The serving regression gate: what must hold for a committed report.

    Returns a list of human-readable problems (empty means the report
    passes): per-query answers must be bit-identical between schedulers,
    and cache-affinity must beat FIFO on aggregate throughput for the
    Zipf-skewed workload.
    """
    problems = []
    for key in SERVE_REPORT_KEYS:
        if key not in report:
            problems.append(f"serving report missing key {key!r}")
    workloads = report.get("workloads", {})
    for wname in WORKLOAD_NAMES:
        if wname not in workloads:
            problems.append(f"serving report missing workload {wname!r}")
    for wname, row in workloads.items():
        if row.get("results_identical") is not True:
            problems.append(
                f"{wname}: per-query answers are not proven identical "
                "between schedulers (both fifo and affinity must run)")
    ratio = workloads.get("zipf", {}).get("throughput_ratio")
    if ratio is None:
        problems.append("zipf: no affinity-vs-fifo throughput_ratio recorded")
    elif ratio <= 1.0:
        problems.append(
            f"zipf: cache-affinity throughput ratio {ratio:.3f} <= 1.0 "
            "(must beat FIFO on the skewed workload)")
    return problems


def write_serve_report(report: Mapping[str, Any], path: str) -> None:
    """Gate-check, schema-check and write the serving report."""
    problems = check_serve_report(report)
    if problems:
        raise ValueError("; ".join(problems))
    write_report(report, path, required_keys=SERVE_REPORT_KEYS)
