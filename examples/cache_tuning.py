#!/usr/bin/env python
"""Tune the CLaMPI caches for a workload (a Figure 7/8-style study).

Sweeps cache capacity and compares eviction-score policies on a scale-free
graph, printing the communication-time / hit-rate trade-off so a user can
size the caches for their own memory budget.

    python examples/cache_tuning.py
"""

from repro.core import CacheSpec, LCCConfig, compute_lcc
from repro.graph import load_dataset
from repro.utils.units import format_bytes


def main() -> None:
    graph = load_dataset("rmat-s20-ef16")
    print(f"graph: {graph.name}  |V|={graph.n:,}  |E|={graph.m:,}  "
          f"CSR={format_bytes(graph.nbytes)}\n")

    base_cfg = LCCConfig(nranks=8, threads=12)
    baseline = compute_lcc(graph, base_cfg)
    print(f"no cache: {baseline.time * 1e3:7.1f} ms "
          f"(comm busy {baseline.comm_time * 1e3:.0f} ms across ranks)\n")

    print(f"{'budget':>10} {'policy':>8} {'time':>9} {'vs none':>8} "
          f"{'adj hit':>8} {'off hit':>8}")
    for fraction in (0.05, 0.25, 1.0, 2.0):
        budget = max(4096, int(fraction * graph.nbytes))
        for score in ("lru", "default", "degree"):
            spec = CacheSpec.paper_split(budget, graph.n, score=score)
            res = compute_lcc(graph, base_cfg.replace(cache=spec))
            gain = 1 - res.time / baseline.time
            print(f"{format_bytes(budget):>10} {score:>8} "
                  f"{res.time * 1e3:7.1f}ms {gain:8.1%} "
                  f"{res.adj_cache_stats['hit_rate']:8.1%} "
                  f"{res.offsets_cache_stats['hit_rate']:8.1%}")
        print()

    print("reading the table: 'degree' is the paper's application-defined "
          "score extension;\nits advantage appears once the budget forces "
          "evictions (small budgets),\nand disappears when everything fits.")


if __name__ == "__main__":
    main()
